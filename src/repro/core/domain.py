"""Domains: convex regions of nodes owned by one application or VM.

The operating system must "allocate compute and storage resources to an
application or virtual machine, ensuring that the domain complies with
the convex shape property" (Section 2.2).  Convexity here is defined by
the routing function: with XY dimension-order routing, a set is convex
iff the XY path between every ordered pair of its nodes stays inside
the set — then all intra-domain cache traffic is physically contained.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.chip import Chip, Coord
from repro.errors import ConvexityError


def xy_path(a: Coord, b: Coord) -> list[Coord]:
    """Nodes on the XY dimension-order route from ``a`` to ``b``.

    Moves along the row (X) first, then along the column (Y), matching
    the paper's "first traverses a channel along the row in which the
    access originated before switching to a column".

    >>> xy_path((0, 0), (2, 1))
    [(0, 0), (1, 0), (2, 0), (2, 1)]
    """
    path = [a]
    x, y = a
    step_x = 1 if b[0] > x else -1
    while x != b[0]:
        x += step_x
        path.append((x, y))
    step_y = 1 if b[1] > y else -1
    while y != b[1]:
        y += step_y
        path.append((x, y))
    return path


def is_convex(nodes: frozenset[Coord] | set[Coord]) -> bool:
    """Whether XY routes between all pairs of nodes stay in the set.

    Rectangles always qualify; L-shapes do not (the return path along
    the far row leaves the set).
    """
    if not nodes:
        return True
    node_set = set(nodes)
    for a in node_set:
        for b in node_set:
            if a == b:
                continue
            if any(step not in node_set for step in xy_path(a, b)):
                return False
    return True


@dataclass(frozen=True)
class Domain:
    """A named convex region allocated to one application or VM.

    Attributes
    ----------
    name:
        Owner identity (VM or application name).
    nodes:
        The allocated coordinates.
    weight:
        Relative service rate the hypervisor programs for the owner's
        flows in the shared regions.
    """

    name: str
    nodes: frozenset[Coord]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ConvexityError(f"domain {self.name!r} is empty")
        if self.weight <= 0:
            raise ConvexityError(f"domain {self.name!r} needs a positive weight")
        if not is_convex(self.nodes):
            raise ConvexityError(
                f"domain {self.name!r} violates the convex-shape property"
            )

    def validate_on(self, chip: Chip) -> None:
        """Check the domain only uses allocatable compute nodes."""
        for node in self.nodes:
            if not chip.in_bounds(node):
                raise ConvexityError(f"domain {self.name!r}: node {node} off-grid")
            if chip.is_shared(node):
                raise ConvexityError(
                    f"domain {self.name!r}: node {node} lies in a shared column"
                )

    def contains(self, node: Coord) -> bool:
        """Membership test."""
        return node in self.nodes

    @property
    def size(self) -> int:
        """Number of nodes in the domain."""
        return len(self.nodes)

    def rows(self) -> set[int]:
        """Grid rows the domain touches (shared-column entry rows)."""
        return {y for _, y in self.nodes}

    def capacity_threads(self, chip: Chip) -> int:
        """How many threads the domain can host (terminals per node)."""
        return sum(chip.terminals_at(node) for node in self.nodes)


@dataclass
class DomainSet:
    """A collection of mutually exclusive domains on one chip."""

    chip: Chip
    domains: dict[str, Domain] = field(default_factory=dict)

    def add(self, domain: Domain) -> None:
        """Insert after validating convexity, bounds, and exclusivity."""
        domain.validate_on(self.chip)
        for existing in self.domains.values():
            overlap = existing.nodes & domain.nodes
            if overlap:
                raise ConvexityError(
                    f"domain {domain.name!r} overlaps {existing.name!r} at {sorted(overlap)}"
                )
        if domain.name in self.domains:
            raise ConvexityError(f"duplicate domain name {domain.name!r}")
        self.domains[domain.name] = domain

    def remove(self, name: str) -> Domain:
        """Remove and return a domain."""
        if name not in self.domains:
            raise ConvexityError(f"no domain named {name!r}")
        return self.domains.pop(name)

    def owner_of(self, node: Coord) -> str | None:
        """Which domain owns the node, if any."""
        for domain in self.domains.values():
            if domain.contains(node):
                return domain.name
        return None
