"""The chip: a concentrated, MECS-connected grid with shared columns.

The paper's target is a 256-tile CMP.  Four-way concentration (Balfour &
Dally) integrates four terminals per router, reducing the network to an
8x8 grid of nodes.  One or more columns in the grid are *shared
regions*: each of their routers hosts a shared resource terminal (a
memory controller in the paper) and carries hardware QoS support; every
other node hosts core/cache tiles and carries none.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

Coord = tuple[int, int]


class NodeKind(enum.Enum):
    """What a network node integrates."""

    COMPUTE = "compute"
    SHARED = "shared"


@dataclass(frozen=True)
class ChipConfig:
    """Grid dimensions and shared-region placement.

    Attributes
    ----------
    width / height:
        Node-grid dimensions (8x8 for the 256-tile target).
    concentration:
        Terminals per compute node (4 in the paper).
    shared_columns:
        X positions of the shared-resource columns (the paper evaluates
        a single column in the middle of the grid).
    """

    width: int = 8
    height: int = 8
    concentration: int = 4
    shared_columns: tuple[int, ...] = (4,)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError("grid dimensions must be positive")
        if self.concentration <= 0:
            raise ConfigurationError("concentration must be positive")
        if not self.shared_columns:
            raise ConfigurationError("at least one shared column is required")
        for column in self.shared_columns:
            if not 0 <= column < self.width:
                raise ConfigurationError(f"shared column {column} out of range")
        if len(set(self.shared_columns)) != len(self.shared_columns):
            raise ConfigurationError("shared columns must be distinct")

    @property
    def total_tiles(self) -> int:
        """Terminals across the whole chip (256 for the default)."""
        compute_nodes = self.width * self.height - len(self.shared_columns) * self.height
        return compute_nodes * self.concentration + len(self.shared_columns) * self.height


@dataclass
class Chip:
    """An instantiated chip: node kinds, geometry and reachability."""

    config: ChipConfig = field(default_factory=ChipConfig)

    def __post_init__(self) -> None:
        self._shared = set()
        for column in self.config.shared_columns:
            for y in range(self.config.height):
                self._shared.add((column, y))

    # -- geometry ------------------------------------------------------

    def in_bounds(self, node: Coord) -> bool:
        """Whether the coordinate is on the grid."""
        x, y = node
        return 0 <= x < self.config.width and 0 <= y < self.config.height

    def node_kind(self, node: Coord) -> NodeKind:
        """COMPUTE or SHARED."""
        self._check(node)
        return NodeKind.SHARED if node in self._shared else NodeKind.COMPUTE

    def is_shared(self, node: Coord) -> bool:
        """Whether the node sits in a QoS-protected shared column."""
        self._check(node)
        return node in self._shared

    def compute_nodes(self) -> list[Coord]:
        """All allocatable (non-shared) nodes, row-major order."""
        return [
            (x, y)
            for y in range(self.config.height)
            for x in range(self.config.width)
            if (x, y) not in self._shared
        ]

    def shared_nodes(self) -> list[Coord]:
        """All shared-region nodes."""
        return sorted(self._shared, key=lambda n: (n[0], n[1]))

    def terminals_at(self, node: Coord) -> int:
        """Terminals integrated at the node (4 compute / 1 shared)."""
        return 1 if self.is_shared(node) else self.config.concentration

    # -- MECS reachability ---------------------------------------------

    def nearest_shared_column(self, node: Coord) -> int:
        """X position of the closest shared column to the node."""
        self._check(node)
        x = node[0]
        return min(self.config.shared_columns, key=lambda column: (abs(column - x), column))

    def single_hop_to_shared(self, node: Coord) -> Coord:
        """Shared-column entry reachable in one MECS row hop.

        MECS point-to-multipoint row channels reach every node in the
        row, so any node reaches a shared column without traversing any
        intermediate router — the physical-isolation property the
        scheme relies on.
        """
        column = self.nearest_shared_column(node)
        return (column, node[1])

    def mecs_row_reachable(self, a: Coord, b: Coord) -> bool:
        """Whether one MECS row channel connects the two nodes."""
        return self.in_bounds(a) and self.in_bounds(b) and a[1] == b[1] and a != b

    def _check(self, node: Coord) -> None:
        if not self.in_bounds(node):
            raise ConfigurationError(f"node {node} outside the {self.config.width}x{self.config.height} grid")
