"""Convex domain allocation.

Allocates rectangular regions of compute nodes (rectangles are always
XY-convex) sized to a VM's node demand, preferring placements close to
a shared column so memory-bound workloads sit near their QoS region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.chip import Chip, Coord
from repro.core.domain import Domain, DomainSet
from repro.errors import AllocationError


@dataclass
class DomainAllocator:
    """First-fit-by-score rectangular allocator over one chip."""

    chip: Chip
    domains: DomainSet = field(init=False)

    def __post_init__(self) -> None:
        self.domains = DomainSet(self.chip)
        self._free: set[Coord] = set(self.chip.compute_nodes())

    # -- queries ---------------------------------------------------------

    @property
    def free_nodes(self) -> int:
        """Allocatable nodes remaining."""
        return len(self._free)

    def is_free(self, node: Coord) -> bool:
        """Whether the node is allocatable and unowned."""
        return node in self._free

    # -- allocation ------------------------------------------------------

    def allocate(self, name: str, n_nodes: int, *, weight: float = 1.0) -> Domain:
        """Allocate a convex domain of at least ``n_nodes`` nodes.

        Chooses the rectangle with minimal waste (area minus demand),
        breaking ties by distance of the rectangle's centroid to the
        nearest shared column, then by position.  Raises
        :class:`AllocationError` when no rectangle fits (fragmentation
        or exhaustion).
        """
        if n_nodes <= 0:
            raise AllocationError("domain size must be positive")
        if n_nodes > len(self._free):
            raise AllocationError(
                f"requested {n_nodes} nodes but only {len(self._free)} are free"
            )
        best: tuple[tuple, frozenset[Coord]] | None = None
        width = self.chip.config.width
        height = self.chip.config.height
        for rect_w in range(1, width + 1):
            for rect_h in range(1, height + 1):
                area = rect_w * rect_h
                if area < n_nodes:
                    continue
                for x0 in range(0, width - rect_w + 1):
                    for y0 in range(0, height - rect_h + 1):
                        nodes = [
                            (x, y)
                            for x in range(x0, x0 + rect_w)
                            for y in range(y0, y0 + rect_h)
                        ]
                        if any(node not in self._free for node in nodes):
                            continue
                        centroid_x = x0 + (rect_w - 1) / 2
                        distance = min(
                            abs(column - centroid_x)
                            for column in self.chip.config.shared_columns
                        )
                        score = (area - n_nodes, distance, x0, y0)
                        if best is None or score < best[0]:
                            best = (score, frozenset(nodes))
        if best is None:
            raise AllocationError(
                f"no convex placement for {n_nodes} nodes (fragmentation)"
            )
        domain = Domain(name=name, nodes=best[1], weight=weight)
        self.domains.add(domain)
        self._free -= domain.nodes
        return domain

    def allocate_explicit(self, name: str, nodes: set[Coord], *, weight: float = 1.0) -> Domain:
        """Allocate a caller-chosen node set (validated for convexity)."""
        unavailable = [node for node in nodes if node not in self._free]
        if unavailable:
            raise AllocationError(f"nodes not free: {sorted(unavailable)}")
        domain = Domain(name=name, nodes=frozenset(nodes), weight=weight)
        self.domains.add(domain)
        self._free -= domain.nodes
        return domain

    def release(self, name: str) -> None:
        """Return a domain's nodes to the free pool."""
        domain = self.domains.remove(name)
        self._free |= domain.nodes
