"""Isolation verification: the scheme's physical-containment property.

A route is *isolating* when every router it traverses is either (a) a
QoS-protected shared-region router, or (b) owned by the domain of one
of the route's endpoints.  The verifier checks this for arbitrary sets
of routes, and :func:`audit_chip` sweeps representative traffic
(intra-domain, memory access, inter-VM) across whole domain layouts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chip import Chip, Coord
from repro.core.domain import DomainSet
from repro.core.routing import RouterPath, route_inter_vm, route_intra_domain, route_to_shared


@dataclass(frozen=True)
class IsolationViolation:
    """One route hop that lands in a third party's unprotected router."""

    path: RouterPath
    hop: Coord
    intruded_domain: str

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (
            f"hop {self.hop} of route {self.path.hops} traverses "
            f"unprotected domain {self.intruded_domain!r}"
        )


def verify_isolation(
    chip: Chip,
    domains: DomainSet,
    routes: list[tuple[RouterPath, frozenset[str]]],
) -> list[IsolationViolation]:
    """Check routes against the ownership map.

    Parameters
    ----------
    routes:
        ``(path, allowed_owner_names)`` pairs; hops may traverse shared
        routers or routers owned by the allowed set.
    """
    violations = []
    for path, allowed in routes:
        for hop in path.hops:
            if chip.is_shared(hop):
                continue
            owner = domains.owner_of(hop)
            if owner is not None and owner not in allowed:
                violations.append(
                    IsolationViolation(path=path, hop=hop, intruded_domain=owner)
                )
    return violations


def audit_chip(chip: Chip, domains: DomainSet) -> list[IsolationViolation]:
    """Sweep representative traffic over every domain and pair.

    * every intra-domain node pair routes XY inside the domain;
    * every node's memory access routes to each shared-region node;
    * every inter-domain pair routes through the shared column.

    Returns all violations found (an empty list proves the layout's
    isolation for these traffic classes).
    """
    routes: list[tuple[RouterPath, frozenset[str]]] = []
    domain_list = list(domains.domains.values())
    shared = chip.shared_nodes()
    for domain in domain_list:
        members = sorted(domain.nodes)
        for src in members:
            for dst in members:
                if src != dst:
                    routes.append(
                        (
                            route_intra_domain(chip, domain, src, dst),
                            frozenset({domain.name}),
                        )
                    )
            for mc in shared:
                routes.append(
                    (route_to_shared(chip, src, mc), frozenset({domain.name}))
                )
    for a_index, domain_a in enumerate(domain_list):
        for domain_b in domain_list[a_index + 1 :]:
            src = sorted(domain_a.nodes)[0]
            dst = sorted(domain_b.nodes)[-1]
            allowed = frozenset({domain_a.name, domain_b.name})
            routes.append((route_inter_vm(chip, src, dst), allowed))
            routes.append((route_inter_vm(chip, dst, src), allowed))
    return verify_isolation(chip, domains, routes)


def naive_xy_violations(chip: Chip, domains: DomainSet) -> list[IsolationViolation]:
    """Counter-demonstration: inter-VM traffic routed naively (XY).

    Reproduces Section 2.2's hazard — dimension-order routing between
    two VMs can turn inside a third VM's domain.  Returns the
    violations such routing would cause (typically non-empty), showing
    why inter-VM transfers must transit the shared columns.
    """
    from repro.core.routing import _path

    routes = []
    domain_list = list(domains.domains.values())
    for a_index, domain_a in enumerate(domain_list):
        for domain_b in domain_list[a_index + 1 :]:
            for src in sorted(domain_a.nodes):
                for dst in sorted(domain_b.nodes):
                    turn = (dst[0], src[1])
                    path = _path(chip, [src, turn, dst])
                    routes.append((path, frozenset({domain_a.name, domain_b.name})))
    return verify_isolation(chip, domains, routes)
