"""System facade: chip + hypervisor + shared-region simulation bridge.

``TopologyAwareSystem`` glues the chip-level architecture to the
cycle-level shared-region simulator: each admitted VM's memory traffic
enters the shared column at the routers of the rows its domain touches
(via the east/west MECS row inputs, depending on which side of the
column the domain sits), weighted by the VM's programmed service rate,
destined uniformly across the column's memory controllers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.chip import Chip, ChipConfig, Coord
from repro.core.hypervisor import Hypervisor, VirtualMachine
from repro.core.isolation import IsolationViolation, audit_chip
from repro.errors import AllocationError, ConfigurationError
from repro.network.config import COLUMN_NODES, SimulationConfig
from repro.network.engine import ColumnSimulator
from repro.network.packet import EAST_PORTS, WEST_PORTS, FlowSpec
from repro.qos.pvc import PvcPolicy
from repro.topologies.registry import get_topology
from repro.traffic.patterns import uniform_random


@dataclass
class SharedRegionBinding:
    """How VM flows map onto shared-column injector ports."""

    flows: list[FlowSpec] = field(default_factory=list)
    owners: list[str] = field(default_factory=list)

    def flows_of(self, owner: str) -> list[int]:
        """Flow ids belonging to one VM."""
        return [index for index, name in enumerate(self.owners) if name == owner]


class TopologyAwareSystem:
    """End-to-end model of the paper's architecture."""

    def __init__(self, config: ChipConfig | None = None) -> None:
        self.chip = Chip(config or ChipConfig())
        if self.chip.config.height != COLUMN_NODES:
            raise ConfigurationError(
                "the shared-region simulator models an 8-router column; "
                f"chip height {self.chip.config.height} != {COLUMN_NODES}"
            )
        self.hypervisor = Hypervisor(self.chip)

    # -- VM lifecycle ------------------------------------------------------

    def admit_vm(self, name: str, n_threads: int, *, weight: float = 1.0) -> VirtualMachine:
        """Admit a VM (convex domain, co-scheduling, rate programming)."""
        return self.hypervisor.admit(name, n_threads, weight=weight)

    def evict_vm(self, name: str) -> None:
        """Tear a VM down."""
        self.hypervisor.evict(name)

    def audit_isolation(self) -> list[IsolationViolation]:
        """Verify physical isolation across all admitted VMs."""
        return audit_chip(self.chip, self.hypervisor.allocator.domains)

    # -- shared-region bridge ----------------------------------------------

    def bind_shared_column(
        self,
        *,
        rate_per_flow: float = 0.03,
        column: int | None = None,
    ) -> SharedRegionBinding:
        """Build shared-column injector flows for every admitted VM.

        Each row a VM's domain touches contributes one flow entering
        the column router of that row: from a west-side domain via a
        ``west*`` row-input port, from an east-side domain via an
        ``east*`` port.  Flow weight is the VM's programmed service
        weight; destinations are uniform across the column's MCs.
        """
        if column is None:
            column = self.chip.config.shared_columns[0]
        elif column not in self.chip.config.shared_columns:
            raise ConfigurationError(f"{column} is not a shared column")
        binding = SharedRegionBinding()
        used_ports: dict[tuple[int, str], bool] = {}
        for name, vm in sorted(self.hypervisor.vms.items()):
            sides = self._domain_sides(vm, column)
            for row, side in sorted(sides):
                port = self._claim_port(row, side, used_ports)
                binding.flows.append(
                    FlowSpec(
                        node=row,
                        port=port,
                        rate=rate_per_flow,
                        weight=vm.weight,
                        pattern=uniform_random,
                    )
                )
                binding.owners.append(name)
        if not binding.flows:
            raise AllocationError("no VMs admitted; nothing to bind")
        return binding

    def _domain_sides(self, vm: VirtualMachine, column: int) -> set[tuple[int, str]]:
        sides: set[tuple[int, str]] = set()
        for x, y in vm.domain.nodes:
            sides.add((y, "west" if x < column else "east"))
        return sides

    def _claim_port(
        self, row: int, side: str, used: dict[tuple[int, str], bool]
    ) -> str:
        pool = WEST_PORTS if side == "west" else EAST_PORTS
        for port in pool:
            key = (row, port)
            if key not in used:
                used[key] = True
                return port
        raise AllocationError(
            f"row {row} has no free {side}-side injector ports left"
        )

    def shared_region_simulator(
        self,
        topology_name: str = "dps",
        *,
        binding: SharedRegionBinding | None = None,
        config: SimulationConfig | None = None,
        rate_per_flow: float = 0.03,
    ) -> tuple[ColumnSimulator, SharedRegionBinding]:
        """Build a cycle-level simulator of the QoS column for this system."""
        binding = binding or self.bind_shared_column(rate_per_flow=rate_per_flow)
        config = config or SimulationConfig()
        topology = get_topology(topology_name)
        simulator = ColumnSimulator(
            topology.build(config), binding.flows, PvcPolicy(), config
        )
        return simulator, binding

    # -- reporting -----------------------------------------------------------

    def describe(self) -> str:
        """Human-readable layout summary (used by examples)."""
        lines = [
            f"chip: {self.chip.config.width}x{self.chip.config.height} nodes, "
            f"{self.chip.config.total_tiles} tiles, "
            f"shared columns at x={list(self.chip.config.shared_columns)}"
        ]
        for name, vm in sorted(self.hypervisor.vms.items()):
            nodes = sorted(vm.domain.nodes)
            lines.append(
                f"  VM {name!r}: {vm.n_threads} threads, weight {vm.weight}, "
                f"domain {nodes[0]}..{nodes[-1]} ({len(nodes)} nodes)"
            )
        return "\n".join(lines)


def grid_ascii(system: TopologyAwareSystem) -> str:
    """ASCII map of the chip: domains by initial, shared columns as '#'."""
    chip = system.chip
    rows = []
    domains = system.hypervisor.allocator.domains
    for y in range(chip.config.height):
        row = []
        for x in range(chip.config.width):
            node: Coord = (x, y)
            if chip.is_shared(node):
                row.append("#")
            else:
                owner = domains.owner_of(node)
                row.append(owner[0].upper() if owner else ".")
        rows.append(" ".join(row))
    return "\n".join(rows)
