"""QoS-aware memory-controller endpoint.

A comprehensive on-chip QoS solution needs protection at shared
endpoints as well as in the network (Section 6 cites the memory-
scheduling line of work).  This model serves one request per cycle
using the same rate-scaled virtual-clock discipline PVC uses in the
network, so a shared column pairs each router with a fair endpoint.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MemRequest:
    """One memory request from a flow (VM/application)."""

    owner: str
    issued_at: int
    service_cycles: int = 1


class MemoryController:
    """Rate-weighted fair scheduler over per-owner request queues."""

    def __init__(self, weights: dict[str, float]) -> None:
        if not weights:
            raise ConfigurationError("memory controller needs at least one owner")
        for owner, weight in weights.items():
            if weight <= 0:
                raise ConfigurationError(f"owner {owner!r} needs a positive weight")
        self.weights = dict(weights)
        self.queues: dict[str, deque[MemRequest]] = {
            owner: deque() for owner in weights
        }
        self.serviced: dict[str, int] = {owner: 0 for owner in weights}
        self._consumed: dict[str, float] = {owner: 0.0 for owner in weights}
        self.cycle = 0
        self._busy_until = 0
        self.total_wait_cycles = 0

    def submit(self, owner: str, *, service_cycles: int = 1) -> None:
        """Enqueue one request for ``owner``."""
        if owner not in self.queues:
            raise ConfigurationError(f"unknown owner {owner!r}")
        self.queues[owner].append(
            MemRequest(owner=owner, issued_at=self.cycle, service_cycles=service_cycles)
        )

    def tick(self) -> str | None:
        """Advance one cycle; returns the owner served, if any."""
        self.cycle += 1
        if self._busy_until > self.cycle:
            return None
        best_owner = None
        best_key = None
        for owner, queue in self.queues.items():
            if not queue:
                continue
            key = (self._consumed[owner] / self.weights[owner], owner)
            if best_key is None or key < best_key:
                best_key = key
                best_owner = owner
        if best_owner is None:
            return None
        request = self.queues[best_owner].popleft()
        self._consumed[best_owner] += request.service_cycles
        self.serviced[best_owner] += 1
        self.total_wait_cycles += self.cycle - request.issued_at
        self._busy_until = self.cycle + request.service_cycles
        return best_owner

    def run(self, cycles: int) -> dict[str, int]:
        """Tick ``cycles`` times; returns requests served per owner."""
        served = {owner: 0 for owner in self.queues}
        for _ in range(cycles):
            owner = self.tick()
            if owner is not None:
                served[owner] += 1
        return served

    def flush_frame(self) -> None:
        """Clear consumption counters (PVC-style frame rollover)."""
        for owner in self._consumed:
            self._consumed[owner] = 0.0

    def backlog(self, owner: str) -> int:
        """Pending requests for one owner."""
        return len(self.queues[owner])
