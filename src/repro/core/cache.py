"""Intra-domain shared last-level cache model.

Section 2.2 argues the convex-domain organisation "combines the
benefits of increased capacity of a shared cache with physical
isolation that precludes the need for cache-level hardware QoS
support".  This model quantifies both halves of that claim for a
domain:

* **capacity** — threads see the aggregate cache of all tiles in the
  domain instead of a private slice;
* **locality cost** — a shared access travels to the tile that owns the
  line (address-interleaved), so average access distance grows with
  domain span;
* **isolation** — capacity is a function of the domain alone; no other
  tenant can displace its lines, so no cache QoS hardware is needed.

The miss model is a standard power-law (square-root-rule) working-set
curve — adequate for comparing *organisations*, which is all the
architecture argument needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chip import Chip
from repro.core.domain import Domain
from repro.errors import ConfigurationError

#: Cache tile capacity; one tile per terminal slot devoted to cache.
DEFAULT_TILE_KB = 512

#: Power-law exponent of the miss-ratio curve (sqrt rule).
_MISS_CURVE_EXPONENT = 0.5

#: Compulsory-miss floor: extra capacity cannot help below this.
MISS_FLOOR = 0.05


@dataclass(frozen=True)
class CacheOrganisation:
    """Capacity/latency summary of one caching organisation."""

    label: str
    capacity_kb: int
    miss_ratio: float
    mean_access_hops: float

    def __post_init__(self) -> None:
        if self.capacity_kb < 0 or not 0.0 <= self.miss_ratio <= 1.0:
            raise ConfigurationError("invalid cache organisation figures")


def miss_ratio(
    capacity_kb: float, working_set_kb: float, *, floor: float = MISS_FLOOR
) -> float:
    """Power-law miss curve: ``(capacity / ws) ** -0.5``, capped at 1
    and floored at the compulsory-miss rate.

    >>> miss_ratio(1024, 1024)
    1.0
    >>> round(miss_ratio(4096, 1024), 3)
    0.5
    """
    if capacity_kb <= 0:
        return 1.0
    if working_set_kb <= 0:
        raise ConfigurationError("working set must be positive")
    if capacity_kb <= working_set_kb:
        return 1.0
    curve = (capacity_kb / working_set_kb) ** -_MISS_CURVE_EXPONENT
    return max(floor, curve)


def mean_pairwise_hops(domain: Domain) -> float:
    """Average Manhattan distance between domain node pairs (incl. self)."""
    nodes = sorted(domain.nodes)
    total = 0
    for a in nodes:
        for b in nodes:
            total += abs(a[0] - b[0]) + abs(a[1] - b[1])
    return total / (len(nodes) ** 2)


def domain_cache_analysis(
    chip: Chip,
    domain: Domain,
    *,
    working_set_kb: float,
    cache_tiles_per_node: int = 2,
    tile_kb: int = DEFAULT_TILE_KB,
) -> tuple[CacheOrganisation, CacheOrganisation]:
    """Compare private-per-node vs domain-shared cache organisations.

    Returns ``(private, shared)``.  The shared organisation aggregates
    every cache tile in the domain (lower miss ratio) but pays the mean
    intra-domain hop distance per access; the private organisation has
    zero network distance but only a node's own tiles.
    """
    if cache_tiles_per_node <= 0 or cache_tiles_per_node > chip.config.concentration:
        raise ConfigurationError(
            "cache_tiles_per_node must be in 1..concentration"
        )
    per_node_kb = cache_tiles_per_node * tile_kb
    shared_kb = per_node_kb * domain.size
    private = CacheOrganisation(
        label="private per node",
        capacity_kb=per_node_kb,
        miss_ratio=miss_ratio(per_node_kb, working_set_kb),
        mean_access_hops=0.0,
    )
    shared = CacheOrganisation(
        label="domain-shared",
        capacity_kb=shared_kb,
        miss_ratio=miss_ratio(shared_kb, working_set_kb),
        mean_access_hops=mean_pairwise_hops(domain),
    )
    return private, shared


def shared_wins(
    private: CacheOrganisation,
    shared: CacheOrganisation,
    *,
    hop_cycles: float = 3.0,
    miss_penalty_cycles: float = 120.0,
) -> bool:
    """Whether sharing lowers expected access cost for this working set.

    Expected cost per access = hit distance + miss_ratio x penalty.
    Sharing wins when the capacity-driven miss reduction outweighs the
    extra on-die distance — true for working sets that overflow a
    node's private slice, which is the consolidation scenario the paper
    targets.
    """
    private_cost = private.mean_access_hops * hop_cycles + (
        private.miss_ratio * miss_penalty_cycles
    )
    shared_cost = shared.mean_access_hops * hop_cycles + (
        shared.miss_ratio * miss_penalty_cycles
    )
    return shared_cost < private_cost
