"""Chip-level MECS routing with forced shared-column transit.

MECS channels are point-to-multipoint: a packet crosses a whole row (or
column span) in one network hop, stopping only where it turns or
terminates.  Router-level interference therefore happens exclusively at
the hop points, which is what the isolation argument rests on:

* **intra-domain** traffic routes XY; convexity guarantees the turn
  node belongs to the domain;
* **shared-region access** (e.g. a cache miss to a memory controller)
  takes one row hop to the QoS column, then moves inside the protected
  column;
* **inter-VM** traffic must transit a shared column even when that is
  non-minimal, so the turn never lands in a third VM's domain
  (the VM #1 -> VM #3 via VM #2 hazard of Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chip import Chip, Coord
from repro.core.domain import Domain
from repro.errors import IsolationError


@dataclass(frozen=True)
class RouterPath:
    """A chip-level route as the sequence of routers actually traversed.

    ``hops`` lists only the routers where the packet stops (MECS
    bypasses everything in between); ``protected`` flags, per hop,
    whether that router carries hardware QoS support.
    """

    hops: tuple[Coord, ...]
    protected: tuple[bool, ...]

    def __post_init__(self) -> None:
        if len(self.hops) != len(self.protected):
            raise IsolationError("hops/protected length mismatch")

    @property
    def unprotected_hops(self) -> tuple[Coord, ...]:
        """Routers traversed without QoS support."""
        return tuple(
            hop for hop, safe in zip(self.hops, self.protected) if not safe
        )

    def mecs_hop_count(self) -> int:
        """Number of MECS channel traversals (hops minus one)."""
        return max(0, len(self.hops) - 1)


def _path(chip: Chip, hops: list[Coord]) -> RouterPath:
    deduped: list[Coord] = []
    for hop in hops:
        if not deduped or deduped[-1] != hop:
            deduped.append(hop)
    return RouterPath(
        hops=tuple(deduped),
        protected=tuple(chip.is_shared(hop) for hop in deduped),
    )


def route_intra_domain(chip: Chip, domain: Domain, src: Coord, dst: Coord) -> RouterPath:
    """XY route between two nodes of one domain.

    Raises :class:`IsolationError` if either endpoint (or the XY turn
    node) falls outside the domain — a convex domain never triggers
    this for member pairs.
    """
    for endpoint in (src, dst):
        if not domain.contains(endpoint):
            raise IsolationError(
                f"{endpoint} is not in domain {domain.name!r}"
            )
    turn = (dst[0], src[1])
    if not domain.contains(turn):
        raise IsolationError(
            f"XY turn {turn} for {src}->{dst} leaves domain {domain.name!r}; "
            "the domain is not convex"
        )
    return _path(chip, [src, turn, dst])


def route_to_shared(chip: Chip, src: Coord, shared_dst: Coord) -> RouterPath:
    """Route from any node to a shared-region node (e.g. an MC).

    One MECS row hop to the shared column — bypassing every
    intermediate router — then a protected column hop to the target.
    """
    if not chip.is_shared(shared_dst):
        raise IsolationError(f"{shared_dst} is not a shared-region node")
    entry = (shared_dst[0], src[1])
    return _path(chip, [src, entry, shared_dst])


def route_inter_vm(chip: Chip, src: Coord, dst: Coord) -> RouterPath:
    """Inter-VM route transiting the QoS-protected shared column.

    Row hop to the column nearest the source, protected column hop to
    the destination's row, then a row hop out to the destination.  The
    only routers traversed outside the endpoints' domains are
    QoS-protected column routers, even when the route is non-minimal.
    """
    column = chip.nearest_shared_column(src)
    entry = (column, src[1])
    exit_node = (column, dst[1])
    return _path(chip, [src, entry, exit_node, dst])
