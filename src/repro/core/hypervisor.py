"""Hypervisor: the OS support the scheme requires (Section 2.2).

Three services, all deliberately modest:

1. schedule threads from only the same application/VM onto a node
   ("friendly" co-scheduling, which removes row-link QoS);
2. allocate compute/storage to each VM as a convex domain;
3. assign bandwidth/priorities to flows by programming memory-mapped
   rate registers at QoS-enabled routers and endpoints in the shared
   regions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.allocator import DomainAllocator
from repro.core.chip import Chip, Coord
from repro.core.domain import Domain
from repro.errors import AllocationError


@dataclass
class VirtualMachine:
    """One admitted VM: its domain, threads, and service weight."""

    name: str
    n_threads: int
    weight: float
    domain: Domain
    thread_placement: dict[int, tuple[Coord, int]] = field(default_factory=dict)

    def threads_on(self, node: Coord) -> list[int]:
        """Thread ids co-scheduled on one node."""
        return [
            thread
            for thread, (placed, _slot) in self.thread_placement.items()
            if placed == node
        ]


@dataclass
class RateRegister:
    """Memory-mapped QoS programming at one shared-region router."""

    node: Coord
    weights: dict[str, float] = field(default_factory=dict)

    def program(self, owner: str, weight: float) -> None:
        """Write the owner's service weight."""
        self.weights[owner] = weight

    def clear(self, owner: str) -> None:
        """Remove the owner's entry (VM teardown)."""
        self.weights.pop(owner, None)


class Hypervisor:
    """Admits VMs, places threads, and programs shared-region rates."""

    def __init__(self, chip: Chip) -> None:
        self.chip = chip
        self.allocator = DomainAllocator(chip)
        self.vms: dict[str, VirtualMachine] = {}
        self.rate_registers: dict[Coord, RateRegister] = {
            node: RateRegister(node) for node in chip.shared_nodes()
        }

    # -- admission -------------------------------------------------------

    def admit(self, name: str, n_threads: int, *, weight: float = 1.0) -> VirtualMachine:
        """Admit a VM: allocate a convex domain sized for its threads,
        co-schedule its threads, and program its weight chip-wide."""
        if name in self.vms:
            raise AllocationError(f"VM {name!r} already admitted")
        if n_threads <= 0:
            raise AllocationError("a VM needs at least one thread")
        nodes_needed = math.ceil(n_threads / self.chip.config.concentration)
        domain = self.allocator.allocate(name, nodes_needed, weight=weight)
        vm = VirtualMachine(name=name, n_threads=n_threads, weight=weight, domain=domain)
        self._place_threads(vm)
        for register in self.rate_registers.values():
            register.program(name, weight)
        self.vms[name] = vm
        return vm

    def evict(self, name: str) -> None:
        """Tear a VM down: release its domain and clear its registers."""
        if name not in self.vms:
            raise AllocationError(f"no VM named {name!r}")
        del self.vms[name]
        self.allocator.release(name)
        for register in self.rate_registers.values():
            register.clear(name)

    def _place_threads(self, vm: VirtualMachine) -> None:
        """Fill nodes with the VM's threads, one slot per terminal."""
        nodes = sorted(vm.domain.nodes)
        slots = [
            (node, slot)
            for node in nodes
            for slot in range(self.chip.terminals_at(node))
        ]
        if len(slots) < vm.n_threads:
            raise AllocationError(
                f"domain of {vm.name!r} holds {len(slots)} threads, "
                f"needs {vm.n_threads}"
            )
        for thread in range(vm.n_threads):
            vm.thread_placement[thread] = slots[thread]

    # -- invariants -------------------------------------------------------

    def co_scheduling_ok(self) -> bool:
        """No node hosts threads of two different VMs."""
        owner_by_node: dict[Coord, str] = {}
        for vm in self.vms.values():
            for node, _slot in vm.thread_placement.values():
                previous = owner_by_node.get(node)
                if previous is not None and previous != vm.name:
                    return False
                owner_by_node[node] = vm.name
        return True

    def programmed_weight(self, node: Coord, owner: str) -> float | None:
        """Weight programmed for the owner at a shared router."""
        register = self.rate_registers.get(node)
        if register is None:
            return None
        return register.weights.get(owner)
