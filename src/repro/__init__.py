"""repro — reproduction of "Topology-aware Quality-of-Service Support in
Highly Integrated Chip Multiprocessors" (Grot, Keckler, Mutlu, 2010).

Public API tour
---------------

Cycle-level shared-region simulation::

    from repro import ColumnSimulator, SimulationConfig, PvcPolicy
    from repro import get_topology, uniform_workload

    topology = get_topology("dps")
    config = SimulationConfig(frame_cycles=10_000)
    sim = ColumnSimulator(topology.build(config), uniform_workload(0.05),
                          PvcPolicy(), config)
    stats = sim.run(10_000, warmup=2_000)
    print(stats.mean_latency)

Chip-level architecture::

    from repro import TopologyAwareSystem

    system = TopologyAwareSystem()
    system.admit_vm("web", n_threads=24, weight=2.0)
    system.admit_vm("db", n_threads=16, weight=3.0)
    assert system.audit_isolation() == []

Parallel sweeps with result caching (:mod:`repro.runtime`)::

    from repro import ParallelExecutor, ResultCache, run_grid

    grid = run_grid(
        ["mesh_x1", "mecs", "dps"], [0.02, 0.06, 0.10],
        workload="full_column", cycles=4000, warmup=1000,
        executor=ParallelExecutor(),          # os.cpu_count() workers
        cache=ResultCache(),                  # ~/.cache/repro
    )
    for name, curve in grid.curves.items():
        print(name, [point.mean_latency for point in curve])
    print(grid.manifest.summary())  # "... N simulated, M cached ..."

Every point is a declarative, content-hashed :class:`RunSpec`; results
are bit-identical across serial/parallel execution and cache round
trips (same seeds ⇒ same stats), and a repeated sweep performs zero
simulations.  Lower-level control: build :class:`RunSpec` batches by
hand and pass them to :func:`run_batch` or an executor's ``map``.

Scenario traffic (:mod:`repro.scenarios`) — bursty sources, record and
replay, closed-loop clients::

    from repro import ColumnSimulator, InjectionCapture, PvcPolicy
    from repro import SimulationConfig, bursty_workload, get_topology
    from repro.scenarios import capture_to_trace, replayed_workload

    config = SimulationConfig(frame_cycles=10_000)
    sim = ColumnSimulator(get_topology("mecs").build(config),
                          bursty_workload(0.3), PvcPolicy(), config)
    capture = InjectionCapture()
    capture.attach(sim)
    sim.run(6_000, warmup=1_000)

    trace = capture_to_trace(capture, sim.flows)      # record ...
    replay = ColumnSimulator(get_topology("mecs").build(config),
                             replayed_workload(trace), PvcPolicy(), config)
    replay.run(6_000, warmup=1_000)                   # ... and replay
    assert replay.stats.snapshot() == sim.stats.snapshot()  # bit-exact

Scenario workloads are also registry names (``"bursty"``,
``"pareto_bursty"``, ``"phased"``, ``"closed_loop"``, ``"replay"``), so
they flow through :class:`RunSpec` hashing, the result cache and the
parallel executor like any other workload.  CLI: ``repro scenario
list|run|record|replay`` and the ``repro burst`` study.

Observability (:mod:`repro.obs`) — engine probes that cost nothing
when off, windowed time-series, packet-lifecycle Chrome traces and
runtime telemetry::

    from repro import ObsSession, RunSpec, execute_spec

    spec = RunSpec(topology="mecs", workload="bursty", rate=0.3,
                   cycles=6_000,
                   obs={"window": 500, "timeline": True, "out_dir": "obs"})
    execute_spec(spec)       # writes <hash>.metrics.jsonl / .trace.json
                             # / .run.json into obs/

The ``obs`` mapping never changes results and never enters the spec's
content hash when empty, so existing caches and campaign baselines are
untouched.  Or attach by hand: construct an :class:`ObsSession`,
``attach(sim)`` before running, ``finalize()`` after.  CLI: ``repro
obs record|report|timeline``, ``--obs DIR`` on any target, ``repro
bench obs`` for the probe-overhead guard.  See
``docs/observability.md``.

QoS policies (:mod:`repro.qos`) — every policy behind one registry::

    from repro import available_policies, create_policy, get_policy

    available_policies()          # ("pvc", "perflow", "noqos", "gsf")
    entry = get_policy("gsf")     # factory + declared capabilities
    entry.capabilities.throttles_injection   # True: source-throttled
    policy = create_policy("gsf")            # fresh, unbound instance

Policies implement the :class:`QosPolicy` contract and declare a
:class:`~repro.qos.base.PolicyCapabilities` record stating what they
ask of the engine (preemption machinery, overflow VCs, compliance
caching, injection throttling); the engines read capabilities, never
concrete types.  Everything that names a policy — ``RunSpec``
validation, the CLI's ``--policy`` choices, experiment policy orders,
campaign stage params — derives from the registry, so
:func:`~repro.qos.register_policy` is the *only* step to add one.
Besides PVC the registry ships GSF (Globally-Synchronized Frames, the
frame-reservation scheme the paper argues against); ``repro pvcgsf``
runs the head-to-head.  See ``docs/qos.md``.

Experiments (one per paper table/figure) live in
:mod:`repro.analysis.experiments`.

Full-paper campaigns (:mod:`repro.campaign`) — every figure, table,
ablation and scenario study as one resumable, sharded, CI-verifiable
run::

    from repro import ResultCache, get_campaign, run_campaign

    result = run_campaign(
        get_campaign("paper"),
        campaign_dir="campaigns/paper",
        cache=ResultCache(),
        baseline_path="CAMPAIGN_baseline.json",
    )
    print(result.report.overall)        # "pass" | "drift" | "fail"

Stages checkpoint shard-by-shard into an on-disk manifest with
sha256-addressed artifacts; interrupting and resuming produces
byte-identical artifacts to an uninterrupted run, and the report card
compares every stage's rows against the committed
``CAMPAIGN_baseline.json``.  CLI: ``repro campaign
list|run|status|resume|report|diff``.

Resilience (:mod:`repro.resilience`) — supervised parallel execution
and reproducible chaos::

    from repro import ParallelExecutor, RetryPolicy, run_chaos

    executor = ParallelExecutor(jobs=4, retry=RetryPolicy(max_attempts=3),
                                timeout=60.0)   # per-spec watchdog
    results = executor.map(specs)   # crashes/hangs retried, not fatal

    report = run_chaos("smoke", chaos_dir="chaos/smoke")
    assert report.converged         # disturbed run == clean run, bit-exact

The parallel executor runs on persistent supervised workers: crashed
or hung workers are detected and their specs deterministically retried
(seeded backoff, no wall-clock randomness); specs that exhaust the
budget raise :class:`ExecutionFailed` with structured
:class:`~repro.resilience.FailureRecord`\\ s *after* the rest of the
batch completed.  Cache blobs are sha256-sealed and quarantined when
corrupt; campaign manifests survive torn writes via a last-good
backup.  :func:`run_chaos` proves it end to end under a seeded
:class:`~repro.resilience.FaultPlan`.  CLI: ``repro chaos run|plan``,
``repro doctor``, ``--retries/--timeout/--chaos`` on any parallel
target.  See ``docs/resilience.md``.

Distributed dispatch (:mod:`repro.dispatch`) — lease-based work
claiming for multi-host campaigns::

    from repro import Broker, BrokerServer, DispatchExecutor

    with BrokerServer(Broker()) as server:      # or: repro dispatch serve
        # workers elsewhere: repro dispatch work http://host:port
        outcome = DispatchExecutor(server.url).run(specs)

    with DispatchExecutor() as executor:        # in-process, deterministic
        outcome = executor.run(specs)           # byte-identical to serial

A :class:`Broker` leases content-hashed specs to
:class:`~repro.dispatch.WorkerAgent`\\ s (claim → heartbeat →
complete); abandoned leases expire and requeue, completions are
idempotent on the spec hash, and every result is sha256-verified
before ingestion.  :class:`DispatchExecutor` is a drop-in executor
over the protocol (``--dispatch URL|DIR|local`` on any batch target)
that degrades to the supervised local pool when the broker is
unreachable.  The chaos harness (``repro chaos run --dispatch local``)
drops, duplicates, delays and partitions broker calls and vanishes
workers mid-lease, then asserts byte-identical convergence.  See
``docs/dispatch.md``.
"""

from repro.analysis.fairness import fairness_report, max_min_allocation
from repro.analysis.sweep import latency_throughput_sweep
from repro.campaign import (
    CAMPAIGNS,
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    ReportCard,
    StageReport,
    StageSpec,
    get_campaign,
    run_campaign,
)
from repro.core.chip import Chip, ChipConfig
from repro.core.domain import Domain, is_convex, xy_path
from repro.core.hypervisor import Hypervisor, VirtualMachine
from repro.core.memctrl import MemoryController
from repro.core.system import TopologyAwareSystem
from repro.dispatch import (
    Broker,
    BrokerServer,
    DispatchExecutor,
    HttpTransport,
    LocalTransport,
    WorkerAgent,
)
from repro.errors import (
    AllocationError,
    CampaignError,
    CampaignInterrupted,
    ConfigurationError,
    ConvexityError,
    DispatchError,
    ExecutionFailed,
    IsolationError,
    ModelError,
    ReproError,
    SimulationError,
    TopologyError,
    TraceOverflowError,
    TrafficError,
    TransportError,
)
from repro.models.area import RouterAreaModel
from repro.models.energy import RouterEnergyModel
from repro.models.technology import TechnologyParameters
from repro.network.config import SimulationConfig
from repro.network.engine import ColumnSimulator
from repro.network.packet import ClosedLoopSpec, FlowSpec, Packet
from repro.network.trace import InjectionCapture, TraceRecorder
from repro.obs import (
    ObsSession,
    ProbeBus,
    TelemetryExecutor,
    WindowedMetrics,
    read_metrics,
    render_report,
)
from repro.qos import (
    GsfPolicy,
    NoQosPolicy,
    PolicyCapabilities,
    PolicyEntry,
    QosPolicy,
    available_policies,
    create_policy,
    get_policy,
    policy_entries,
    register_policy,
)
from repro.resilience import (
    ChaosReport,
    FailureRecord,
    Fault,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    load_plan,
    run_chaos,
)
from repro.qos.perflow import PerFlowQueuedPolicy
from repro.qos.pvc import PvcPolicy
from repro.runtime import (
    BatchResult,
    GridResult,
    ParallelExecutor,
    ResultCache,
    RunManifest,
    RunResult,
    RunSpec,
    SerialExecutor,
    execute_spec,
    run_batch,
    run_grid,
)
from repro.scenarios import (
    InjectionProcess,
    OnOffProcess,
    ParetoBurstProcess,
    Phase,
    PhasedProcess,
    ScenarioTrace,
    bursty_workload,
    closed_loop_workload,
    pareto_workload,
    phased_workload,
    read_trace,
    replayed_workload,
    write_trace,
)
from repro.topologies.registry import TOPOLOGY_NAMES, get_topology
from repro.traffic.workloads import (
    full_column_workload,
    hotspot_all_injectors,
    tornado_workload,
    uniform_workload,
    workload1,
    workload2,
)

# 1.2.0: activity-tracked engine (geometric inter-arrival sampling +
# cycle skipping).  1.3.0: saturation hot path — incremental PVC
# priority/compliance caching (epoch-based lazy flow-table flushes) and
# allocation-free arbitration over persistent per-port rankings.
# Results are bit-identical to 1.2.0, but the version bump deliberately
# invalidates the result cache so every stored blob is regenerated —
# and therefore re-verified — by the new engine.  1.4.0: scenarios
# subsystem — injection processes (on/off, Pareto, phased), JSONL trace
# record/replay, closed-loop request-reply clients; pre-existing
# workloads are bit-identical, the bump guards the cache against the
# engine's new creation path.  1.5.0: campaign subsystem — resumable,
# sharded full-paper reproduction runs with manifest checkpoints,
# sha256-addressed artifacts and a baseline-checked report card; the
# version participates in every stage hash, so campaign manifests and
# baselines invalidate together with the result cache.  1.6.0:
# observability — probe bus in both engines (allocation-free when
# detached), windowed JSONL metrics, Chrome-trace packet lifecycles,
# campaign/runtime telemetry.  Results are bit-identical with probes
# on or off; the bump re-verifies every cached blob through the
# probe-hooked engine.  1.7.0: resilience — supervised persistent
# worker pool (crash/hang detection, deterministic retries, graceful
# degradation), sha256-sealed cache blobs with quarantine-on-read,
# torn-manifest recovery, and the deterministic chaos harness.  Blobs
# written by 1.6.0 carry no payload seal, so the bump regenerates the
# cache under the sealed format; campaign stage hashes (which embed the
# version) and the baseline roll forward with it.  1.8.0: dispatch —
# lease-based broker/worker protocol for multi-host campaigns
# (in-process and localhost-HTTP transports), graceful degradation to
# the supervised pool, counter-keyed network chaos, and campaign
# artifact fsck.  Execution results are bit-identical across
# serial/pool/dispatch paths; the bump rolls the stage hashes and the
# committed baseline forward together, as every version bump must.
# 1.9.0: fleet observability — versioned append-only event journals on
# every broker/worker/campaign lifecycle seam (zero-overhead-when-off,
# bit-neutral to results), content-hash-derived trace/span correlation
# merging per-actor journals into one causally-checked timeline and
# Perfetto fleet trace, broker /metrics + /journal endpoints with the
# live `repro fleet status` / `repro campaign watch` dashboards, and
# guard-checked bench trend history.  Results are unchanged, but the
# version participates in stage hashes, so the committed campaign
# baseline rolls forward with the bump.  1.10.0: policy registry + GSF —
# QoS policies live behind repro.qos.registry (capability-declaring
# entries; every name-consuming surface derives from it), the engines
# read PolicyCapabilities instead of concrete policy types, and
# Globally-Synchronized Frames joins as a fourth policy with
# source-throttled injection via the new injection_release hook.
# Existing policies are bit-identical in both engines; the bump rolls
# the result cache, stage hashes and committed baselines forward with
# the new pvc_vs_gsf stage and GSF bench regime.
__version__ = "1.10.0"

__all__ = [
    "AllocationError",
    "BatchResult",
    "Broker",
    "BrokerServer",
    "CAMPAIGNS",
    "CampaignError",
    "CampaignInterrupted",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "Chip",
    "ChipConfig",
    "ClosedLoopSpec",
    "ColumnSimulator",
    "ChaosReport",
    "ConfigurationError",
    "ConvexityError",
    "DispatchError",
    "DispatchExecutor",
    "Domain",
    "ExecutionFailed",
    "FailureRecord",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "FlowSpec",
    "GridResult",
    "GsfPolicy",
    "HttpTransport",
    "Hypervisor",
    "InjectionCapture",
    "InjectionProcess",
    "IsolationError",
    "LocalTransport",
    "MemoryController",
    "ModelError",
    "NoQosPolicy",
    "ObsSession",
    "OnOffProcess",
    "Packet",
    "ParallelExecutor",
    "ParetoBurstProcess",
    "PerFlowQueuedPolicy",
    "Phase",
    "PhasedProcess",
    "PolicyCapabilities",
    "PolicyEntry",
    "ProbeBus",
    "PvcPolicy",
    "QosPolicy",
    "ReportCard",
    "ReproError",
    "ResultCache",
    "RetryPolicy",
    "RouterAreaModel",
    "RouterEnergyModel",
    "RunManifest",
    "RunResult",
    "RunSpec",
    "ScenarioTrace",
    "SerialExecutor",
    "SimulationConfig",
    "SimulationError",
    "StageReport",
    "StageSpec",
    "TOPOLOGY_NAMES",
    "TechnologyParameters",
    "TelemetryExecutor",
    "TopologyAwareSystem",
    "TopologyError",
    "TraceOverflowError",
    "TraceRecorder",
    "TrafficError",
    "TransportError",
    "VirtualMachine",
    "WindowedMetrics",
    "WorkerAgent",
    "available_policies",
    "bursty_workload",
    "closed_loop_workload",
    "create_policy",
    "execute_spec",
    "fairness_report",
    "full_column_workload",
    "get_campaign",
    "get_policy",
    "get_topology",
    "hotspot_all_injectors",
    "is_convex",
    "latency_throughput_sweep",
    "load_plan",
    "max_min_allocation",
    "pareto_workload",
    "phased_workload",
    "policy_entries",
    "read_metrics",
    "read_trace",
    "register_policy",
    "render_report",
    "replayed_workload",
    "run_batch",
    "run_campaign",
    "run_chaos",
    "run_grid",
    "tornado_workload",
    "uniform_workload",
    "workload1",
    "workload2",
    "write_trace",
    "xy_path",
    "__version__",
]
