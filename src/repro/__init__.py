"""repro — reproduction of "Topology-aware Quality-of-Service Support in
Highly Integrated Chip Multiprocessors" (Grot, Keckler, Mutlu, 2010).

Public API tour
---------------

Cycle-level shared-region simulation::

    from repro import ColumnSimulator, SimulationConfig, PvcPolicy
    from repro import get_topology, uniform_workload

    topology = get_topology("dps")
    config = SimulationConfig(frame_cycles=10_000)
    sim = ColumnSimulator(topology.build(config), uniform_workload(0.05),
                          PvcPolicy(), config)
    stats = sim.run(10_000, warmup=2_000)
    print(stats.mean_latency)

Chip-level architecture::

    from repro import TopologyAwareSystem

    system = TopologyAwareSystem()
    system.admit_vm("web", n_threads=24, weight=2.0)
    system.admit_vm("db", n_threads=16, weight=3.0)
    assert system.audit_isolation() == []

Experiments (one per paper table/figure) live in
:mod:`repro.analysis.experiments`.
"""

from repro.analysis.fairness import fairness_report, max_min_allocation
from repro.analysis.sweep import latency_throughput_sweep
from repro.core.chip import Chip, ChipConfig
from repro.core.domain import Domain, is_convex, xy_path
from repro.core.hypervisor import Hypervisor, VirtualMachine
from repro.core.memctrl import MemoryController
from repro.core.system import TopologyAwareSystem
from repro.errors import (
    AllocationError,
    ConfigurationError,
    ConvexityError,
    IsolationError,
    ModelError,
    ReproError,
    SimulationError,
    TopologyError,
    TrafficError,
)
from repro.models.area import RouterAreaModel
from repro.models.energy import RouterEnergyModel
from repro.models.technology import TechnologyParameters
from repro.network.config import SimulationConfig
from repro.network.engine import ColumnSimulator
from repro.network.packet import FlowSpec, Packet
from repro.qos.base import NoQosPolicy, QosPolicy
from repro.qos.perflow import PerFlowQueuedPolicy
from repro.qos.pvc import PvcPolicy
from repro.topologies.registry import TOPOLOGY_NAMES, get_topology
from repro.traffic.workloads import (
    full_column_workload,
    hotspot_all_injectors,
    tornado_workload,
    uniform_workload,
    workload1,
    workload2,
)

__version__ = "1.0.0"

__all__ = [
    "AllocationError",
    "Chip",
    "ChipConfig",
    "ColumnSimulator",
    "ConfigurationError",
    "ConvexityError",
    "Domain",
    "FlowSpec",
    "Hypervisor",
    "IsolationError",
    "MemoryController",
    "ModelError",
    "NoQosPolicy",
    "Packet",
    "PerFlowQueuedPolicy",
    "PvcPolicy",
    "QosPolicy",
    "ReproError",
    "RouterAreaModel",
    "RouterEnergyModel",
    "SimulationConfig",
    "SimulationError",
    "TOPOLOGY_NAMES",
    "TechnologyParameters",
    "TopologyAwareSystem",
    "TopologyError",
    "TrafficError",
    "VirtualMachine",
    "fairness_report",
    "full_column_workload",
    "get_topology",
    "hotspot_all_injectors",
    "is_convex",
    "latency_throughput_sweep",
    "max_min_allocation",
    "tornado_workload",
    "uniform_workload",
    "workload1",
    "workload2",
    "xy_path",
    "__version__",
]
