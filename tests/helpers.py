"""Test helpers shared across modules."""

from __future__ import annotations

from repro.network.config import SimulationConfig
from repro.network.engine import ColumnSimulator
from repro.qos.pvc import PvcPolicy
from repro.topologies.registry import get_topology
from repro.traffic.workloads import uniform_workload


def build_simulator(
    topology_name: str,
    flows=None,
    *,
    policy=None,
    config: SimulationConfig | None = None,
) -> ColumnSimulator:
    """One-liner simulator builder used across the test suite."""
    config = config or SimulationConfig(frame_cycles=2000, seed=7)
    flows = flows if flows is not None else uniform_workload(0.05)
    policy = policy or PvcPolicy()
    topology = get_topology(topology_name)
    return ColumnSimulator(topology.build(config), flows, policy, config)
