"""Workload builders: flow sets for each experiment."""

import pytest

from repro.errors import TrafficError
from repro.network.packet import ALL_INJECTOR_PORTS, TERMINAL_PORT
from repro.traffic.workloads import (
    WORKLOAD1_RATES,
    full_column_workload,
    hotspot_all_injectors,
    tornado_workload,
    uniform_workload,
    workload1,
    workload2,
)


def test_uniform_workload_one_terminal_per_node():
    flows = uniform_workload(0.1)
    assert len(flows) == 8
    assert all(flow.port == TERMINAL_PORT for flow in flows)
    assert {flow.node for flow in flows} == set(range(8))


def test_uniform_workload_rejects_negative_rate():
    with pytest.raises(TrafficError):
        uniform_workload(-0.1)


def test_tornado_workload_uses_tornado_pattern():
    flows = tornado_workload(0.1)
    assert flows[2].pattern(2, None) == 6


def test_full_column_workload_covers_all_64_injectors():
    flows = full_column_workload(0.05)
    assert len(flows) == 64
    slots = {(flow.node, flow.port) for flow in flows}
    assert len(slots) == 64


def test_hotspot_all_injectors_targets_node0():
    flows = hotspot_all_injectors(0.05)
    assert len(flows) == 64
    assert all(flow.pattern(flow.node, None) == 0 for flow in flows)
    assert all(flow.weight == 1.0 for flow in flows)


def test_hotspot_alternate_target():
    flows = hotspot_all_injectors(0.05, target=5)
    assert all(flow.pattern(flow.node, None) == 5 for flow in flows)


def test_workload1_shape_matches_paper():
    flows = workload1()
    assert len(flows) == 8
    assert all(flow.port == TERMINAL_PORT for flow in flows)
    # Rates span 5%..20%, average around 14% (Section 5.3).
    rates = [flow.rate for flow in flows]
    assert min(rates) == 0.05
    assert max(rates) == 0.20
    assert 0.13 <= sum(rates) / len(rates) <= 0.15
    # Equal priorities: equal PVC weights.
    assert {flow.weight for flow in flows} == {1.0}


def test_workload1_oversubscribes_fair_share():
    # 8 sources sharing a 1-flit/cycle hotspot: fair share is 12.5%;
    # the ladder's average must exceed it to guarantee contention.
    assert sum(WORKLOAD1_RATES) / 8 > 0.125


def test_workload1_rejects_wrong_rate_count():
    with pytest.raises(TrafficError):
        workload1(rates=(0.1, 0.2))


def test_workload2_shape_matches_paper():
    flows = workload2()
    assert len(flows) == 9
    node7 = [flow for flow in flows if flow.node == 7]
    node6 = [flow for flow in flows if flow.node == 6]
    assert len(node7) == 8  # all eight injectors at the farthest node
    assert {flow.port for flow in node7} == set(ALL_INJECTOR_PORTS)
    assert len(node6) == 1  # one extra injector for output contention
    assert node6[0].port == TERMINAL_PORT


def test_packet_limits_propagate():
    for factory in (uniform_workload, tornado_workload):
        flows = factory(0.1, packet_limit=17)
        assert all(flow.packet_limit == 17 for flow in flows)
    assert all(f.packet_limit == 5 for f in workload1(packet_limit=5))
    assert all(f.packet_limit == 5 for f in workload2(packet_limit=5))
    assert all(f.packet_limit == 5 for f in hotspot_all_injectors(packet_limit=5))
