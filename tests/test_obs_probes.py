"""Probe neutrality: observability must never change results.

With every probe enabled — a full :class:`ObsSession`, timeline
included — both engines must produce byte-identical stats snapshots
and event traces across topologies × policies, and the windowed
metrics rows and packet lifecycles must agree between engines despite
their different intra-cycle event orderings.  The optimised engine
must also be bit-identical to itself with probes detached: probes are
observational, full stop.
"""

import pytest

from repro.errors import ConfigurationError
from repro.network.config import SimulationConfig
from repro.network.engine import ColumnSimulator
from repro.network.golden import GoldenColumnSimulator
from repro.network.trace import TraceRecorder
from repro.obs import ENGINE_EVENTS, PACKET_EVENTS, PROBE_EVENTS, ObsSession, ProbeBus
from repro.qos.base import NoQosPolicy
from repro.qos.pvc import PvcPolicy
from repro.scenarios import snapshot_digest
from repro.topologies.registry import get_topology
from repro.traffic.workloads import (
    full_column_workload,
    workload1,
    workload1_finite,
)

POLICIES = {"pvc": PvcPolicy, "noqos": NoQosPolicy}
TOPOLOGIES = ("mesh_x1", "mecs", "dps")


def _observed(cls, topology, flows_factory, policy_name, config):
    """One simulator of ``cls`` with a full ObsSession attached."""
    build = get_topology(topology).build(config)
    simulator = cls(build, flows_factory(), POLICIES[policy_name](), config)
    session = ObsSession(window=500, timeline=True)
    session.attach(simulator)
    return simulator, session


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("policy", ("pvc", "noqos"))
@pytest.mark.parametrize("rate", (0.02, 0.30))
def test_probes_enabled_engines_bit_identical(topology, policy, rate):
    config = SimulationConfig(frame_cycles=1500, seed=5)
    cycles = 2000 if rate >= 0.1 else 3000
    pairs = []
    for cls in (ColumnSimulator, GoldenColumnSimulator):
        simulator, session = _observed(
            cls, topology, lambda: full_column_workload(rate), policy, config
        )
        simulator.run(cycles, warmup=cycles // 4)
        session.finalize(simulator.cycle)
        pairs.append((simulator, session))
    (optimised, opt_obs), (golden, gold_obs) = pairs
    assert snapshot_digest(optimised.stats.snapshot()) == snapshot_digest(
        golden.stats.snapshot()
    )
    assert opt_obs.metrics.rows == gold_obs.metrics.rows
    assert opt_obs.lifecycle.records == gold_obs.lifecycle.records


def test_probes_enabled_traces_identical_under_preemption():
    # workload1 past saturation on PVC exercises preempt/NACK/replay —
    # the trace must stay bit-identical with probes enabled on both
    # engines (probes fire *after* the trace records at every site).
    config = SimulationConfig(frame_cycles=400, seed=11)
    traces = []
    snapshots = []
    for cls in (ColumnSimulator, GoldenColumnSimulator):
        simulator, session = _observed(
            cls, "mesh_x1", workload1, "pvc", config
        )
        recorder = TraceRecorder()
        recorder.attach(simulator)
        simulator.run(1500)
        session.finalize(simulator.cycle)
        traces.append([str(event) for event in recorder.events])
        snapshots.append(simulator.stats.snapshot())
        assert session.metrics.rows[-1]["preempts"] >= 0
    assert snapshots[0] == snapshots[1]
    assert traces[0] == traces[1]


@pytest.mark.parametrize("mode", ("run", "window", "drain"))
def test_probes_do_not_perturb_optimised_engine(mode):
    config = SimulationConfig(frame_cycles=1500, seed=5)
    snapshots = []
    for attach in (False, True):
        build = get_topology("mecs").build(config)
        flows = (
            workload1_finite(duration=800) if mode == "drain"
            else full_column_workload(0.3)
        )
        simulator = ColumnSimulator(build, flows, PvcPolicy(), config)
        if attach:
            session = ObsSession(window=400, timeline=True)
            session.attach(simulator)
        if mode == "run":
            simulator.run(2000, warmup=500)
        elif mode == "window":
            simulator.run_window(warmup=400, window=1600)
        else:
            simulator.run_until_drained(max_cycles=20_000)
        snapshots.append(simulator.stats.snapshot())
    assert snapshots[0] == snapshots[1]


def test_golden_emits_packet_events_only():
    # The golden engine carries the packet-level probe subset; engine
    # internals (skip/arm/sleep/arb_block) are optimised-engine-only.
    config = SimulationConfig(frame_cycles=1000, seed=3)
    counts = {}
    for cls in (ColumnSimulator, GoldenColumnSimulator):
        build = get_topology("mecs").build(config)
        simulator = cls(build, full_column_workload(0.05), PvcPolicy(), config)
        session = ObsSession(window=500)
        session.attach(simulator)
        simulator.run(1500)
        counts[cls.__name__] = session.activity.counters()
    golden = counts["GoldenColumnSimulator"]
    assert golden["skips"] == golden["arms"] == golden["arb_blocks"] == 0
    optimised = counts["ColumnSimulator"]
    assert optimised["arms"] > 0
    # Both engines see the same frame rollovers (a packet-level event).
    assert optimised["frames"] == golden["frames"] > 0


def test_probe_catalogue_partition():
    assert set(PACKET_EVENTS) | set(ENGINE_EVENTS) == set(PROBE_EVENTS)
    assert not set(PACKET_EVENTS) & set(ENGINE_EVENTS)


def test_bus_rejects_unknown_event():
    with pytest.raises(ConfigurationError):
        ProbeBus().subscribe("teleport", lambda *a: None)


def test_bus_requires_probe_capable_simulator():
    with pytest.raises(ConfigurationError):
        ProbeBus().attach(object())


def test_detach_stops_delivery(make_simulator):
    simulator = make_simulator("mesh_x1", full_column_workload(0.1))
    seen = []
    bus = ProbeBus()
    bus.subscribe("deliver", lambda *args: seen.append(args))
    bus.attach(simulator)
    simulator.run(500)
    delivered_while_attached = len(seen)
    assert delivered_while_attached > 0
    ProbeBus.detach(simulator)
    assert simulator._probes is None
    simulator.run(500)
    assert len(seen) == delivered_while_attached


def test_session_cannot_attach_twice(make_simulator):
    session = ObsSession()
    session.attach(make_simulator("mesh_x1"))
    with pytest.raises(ConfigurationError):
        session.attach(make_simulator("mesh_x1"))
    with pytest.raises(ConfigurationError):
        ObsSession().finalize(0)
