"""ASCII chart rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.util.charts import bar_chart, line_chart


def test_bar_chart_scales_to_peak():
    text = bar_chart({"a": 2.0, "b": 1.0}, width=10)
    lines = text.splitlines()
    assert lines[0].count("#") == 10
    assert lines[1].count("#") == 5


def test_bar_chart_title_and_unit():
    text = bar_chart({"x": 1.0}, title="T", unit="pJ")
    assert text.splitlines()[0] == "T"
    assert "pJ" in text


def test_bar_chart_zero_values():
    text = bar_chart({"a": 0.0, "b": 1.0})
    lines = text.splitlines()
    assert "#" not in lines[0]


def test_bar_chart_rejects_empty():
    with pytest.raises(ConfigurationError):
        bar_chart({})


def test_line_chart_contains_markers_and_legend():
    text = line_chart(
        {"s1": [(0, 0), (1, 1)], "s2": [(0, 1), (1, 0)]},
        width=20,
        height=6,
    )
    assert "o" in text and "x" in text
    assert "o s1" in text and "x s2" in text


def test_line_chart_y_cap_clips():
    capped = line_chart({"s": [(0, 1), (1, 1000)]}, y_cap=10.0, height=5)
    assert "10.0" in capped  # axis labelled at the cap, not 1000


def test_line_chart_single_point():
    text = line_chart({"s": [(1, 5)]}, width=10, height=4)
    assert "o" in text


def test_line_chart_rejects_empty():
    with pytest.raises(ConfigurationError):
        line_chart({})
    with pytest.raises(ConfigurationError):
        line_chart({"s": []})
