"""Stations, VCs, output ports, and FabricBuild lookups."""

import pytest

from repro.errors import TopologyError
from repro.network.fabric import OutputPort, Station, VirtualChannel
from repro.network.packet import Packet
from repro.topologies.registry import get_topology


def _station(n_vcs=3, reserve_first=False):
    return Station(
        0, 0, "s", "mesh", n_vcs=n_vcs, va_wait=1, qos=True, reserve_first=reserve_first
    )


def test_station_requires_vcs():
    with pytest.raises(TopologyError):
        _station(n_vcs=0)


def test_free_vc_skips_reserved_without_permission():
    station = _station(n_vcs=2, reserve_first=True)
    vc = station.free_vc(allow_reserved=False)
    assert vc is not None
    assert not vc.reserved
    assert vc.index == 1


def test_free_vc_grants_reserved_with_permission():
    station = _station(n_vcs=2, reserve_first=True)
    station.vcs[1].packet = object()
    assert station.free_vc(allow_reserved=False) is None
    vc = station.free_vc(allow_reserved=True)
    assert vc is not None and vc.reserved


def test_free_vc_overflow_grows_station():
    station = _station(n_vcs=1)
    station.allow_overflow = True
    station.vcs[0].packet = object()
    vc = station.free_vc(allow_reserved=True)
    assert vc is not None
    assert len(station.vcs) == 2


def test_occupancy_counts_held_vcs():
    station = _station(n_vcs=3)
    station.vcs[0].packet = object()
    station.vcs[2].packet = object()
    assert station.occupancy() == 2


def test_vc_clear_resets_transfer_state():
    station = _station()
    vc = station.vcs[0]
    vc.packet = Packet(0, 0, 0, 1, 1, 0)
    vc.arriving_until = 10
    vc.inbound_port = OutputPort(0, 0, "p", is_ejection=False)
    vc.departing = True
    vc.clear()
    assert vc.packet is None
    assert vc.arriving_until == -1
    assert vc.inbound_port is None
    assert not vc.departing


def test_fabric_lookup_by_label():
    build = get_topology("mesh_x1").build()
    station = build.station_by_label("inj_terminal@0")
    assert station.node == 0
    port = build.port_by_label("EJ@7")
    assert port.is_ejection


def test_fabric_lookup_missing_label_raises():
    build = get_topology("mesh_x1").build()
    with pytest.raises(TopologyError):
        build.station_by_label("nope")
    with pytest.raises(TopologyError):
        build.port_by_label("nope")


def test_virtual_channel_reserved_flag():
    station = _station(n_vcs=2, reserve_first=True)
    assert station.vcs[0].reserved
    assert not station.vcs[1].reserved
    plain = VirtualChannel(station, 5)
    assert not plain.reserved
