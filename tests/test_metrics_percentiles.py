"""Latency percentile collection."""

import pytest

from repro.network.metrics import NetworkStats

from helpers import build_simulator
from repro.traffic.workloads import uniform_workload


def test_percentiles_require_opt_in():
    stats = NetworkStats(n_flows=1)
    with pytest.raises(RuntimeError):
        stats.latency_percentile(0.5)


def test_percentile_math():
    # Nearest-rank: index ceil(f*n)-1, so p50 over an even-sized set is
    # the lower median (not the upper, as the old truncation gave).
    stats = NetworkStats(n_flows=1, collect_latencies=True)
    for value in (10.0, 20.0, 30.0, 40.0):
        stats.record_delivery(0, 1, value, cycle=5)
    assert stats.latency_percentile(0.0) == 10.0
    assert stats.latency_percentile(0.25) == 10.0
    assert stats.latency_percentile(0.5) == 20.0
    assert stats.latency_percentile(0.75) == 30.0
    assert stats.latency_percentile(1.0) == 40.0


def test_percentile_nearest_rank_pinned():
    # Regression pin on 1..100: nearest-rank pXX is exactly the XXth
    # sample, with no off-by-one drift at the tail.
    stats = NetworkStats(n_flows=1, collect_latencies=True)
    for value in range(100, 0, -1):  # insertion order must not matter
        stats.record_delivery(0, 1, float(value), cycle=5)
    assert stats.latency_percentile(0.50) == 50.0
    assert stats.latency_percentile(0.90) == 90.0
    assert stats.latency_percentile(0.99) == 99.0
    assert stats.latency_percentile(0.999) == 100.0


def test_percentile_single_sample():
    stats = NetworkStats(n_flows=1, collect_latencies=True)
    stats.record_delivery(0, 1, 42.0, cycle=5)
    for fraction in (0.0, 0.5, 1.0):
        assert stats.latency_percentile(fraction) == 42.0


def test_percentile_rejects_bad_fraction():
    stats = NetworkStats(n_flows=1, collect_latencies=True)
    with pytest.raises(ValueError):
        stats.latency_percentile(1.5)


def test_percentile_empty_is_zero():
    stats = NetworkStats(n_flows=1, collect_latencies=True)
    assert stats.latency_percentile(0.99) == 0.0


def test_samples_respect_window():
    stats = NetworkStats(n_flows=1, collect_latencies=True)
    stats.set_window(100, 200)
    stats.record_delivery(0, 1, 7.0, cycle=50)    # outside
    stats.record_delivery(0, 1, 9.0, cycle=150)   # inside
    assert stats.latency_samples == [9.0]


def test_end_to_end_tail_latency():
    sim = build_simulator("dps", uniform_workload(0.05))
    sim.stats.enable_percentiles()
    sim.run(4000, warmup=1000)
    p50 = sim.stats.latency_percentile(0.5)
    p99 = sim.stats.latency_percentile(0.99)
    assert 0 < p50 <= p99
    assert p50 <= sim.stats.mean_latency * 1.5
