"""Chip-level routing and the physical-isolation guarantees."""

import pytest

from repro.core.allocator import DomainAllocator
from repro.core.chip import Chip
from repro.core.domain import Domain
from repro.core.isolation import audit_chip, naive_xy_violations, verify_isolation
from repro.core.routing import (
    RouterPath,
    route_inter_vm,
    route_intra_domain,
    route_to_shared,
)
from repro.errors import IsolationError


@pytest.fixture
def chip():
    return Chip()


def _domain(nodes, name="vm"):
    return Domain(name, frozenset(nodes))


def test_intra_domain_route_stays_inside(chip):
    domain = _domain({(0, 0), (1, 0), (0, 1), (1, 1)})
    path = route_intra_domain(chip, domain, (0, 0), (1, 1))
    assert set(path.hops) <= domain.nodes
    assert path.hops[0] == (0, 0)
    assert path.hops[-1] == (1, 1)


def test_intra_domain_rejects_outside_endpoints(chip):
    domain = _domain({(0, 0)})
    with pytest.raises(IsolationError):
        route_intra_domain(chip, domain, (0, 0), (5, 5))


def test_route_to_shared_is_two_mecs_hops(chip):
    path = route_to_shared(chip, (0, 3), (4, 6))
    assert path.hops == ((0, 3), (4, 3), (4, 6))
    # Row hop lands in the shared column; only the source is unprotected.
    assert path.protected == (False, True, True)
    assert path.mecs_hop_count() == 2


def test_route_to_shared_rejects_compute_target(chip):
    with pytest.raises(IsolationError):
        route_to_shared(chip, (0, 0), (3, 3))


def test_inter_vm_route_transits_shared_column(chip):
    path = route_inter_vm(chip, (0, 0), (7, 7))
    assert (4, 0) in path.hops
    assert (4, 7) in path.hops
    # Every hop outside the endpoints is a protected column router.
    assert path.unprotected_hops == ((0, 0), (7, 7))


def test_inter_vm_route_same_row_still_uses_column(chip):
    path = route_inter_vm(chip, (0, 2), (7, 2))
    assert any(chip.is_shared(hop) for hop in path.hops)


def test_router_path_validation():
    with pytest.raises(IsolationError):
        RouterPath(hops=((0, 0),), protected=(True, False))


def test_verify_isolation_flags_intrusion(chip):
    domains = DomainAllocator(chip).domains
    domains.add(_domain({(2, 2)}, "victim"))
    # A route that hops through the victim's node without permission.
    path = RouterPath(hops=((0, 2), (2, 2), (3, 2)), protected=(False,) * 3)
    violations = verify_isolation(chip, domains, [(path, frozenset({"other"}))])
    assert len(violations) == 1
    assert violations[0].intruded_domain == "victim"
    assert violations[0].hop == (2, 2)


def test_audit_clean_layout_has_no_violations(chip):
    allocator = DomainAllocator(chip)
    allocator.allocate("a", 6)
    allocator.allocate("b", 8)
    allocator.allocate("c", 4)
    assert audit_chip(chip, allocator.domains) == []


def test_naive_xy_routing_violates_isolation(chip):
    # Section 2.2's hazard: VM#1 -> VM#3 traffic turning inside VM#2.
    allocator = DomainAllocator(chip)
    allocator.allocate_explicit("vm1", {(0, 0), (1, 0), (0, 1), (1, 1)})
    allocator.allocate_explicit("vm2", {(6, 0), (7, 0), (6, 1), (7, 1)})
    allocator.allocate_explicit("vm3", {(6, 6), (7, 6), (6, 7), (7, 7)})
    violations = naive_xy_violations(chip, allocator.domains)
    assert violations  # naive DOR interferes with a third VM
    intruded = {violation.intruded_domain for violation in violations}
    assert "vm2" in intruded


def test_shared_column_transit_fixes_naive_violations(chip):
    allocator = DomainAllocator(chip)
    allocator.allocate_explicit("vm1", {(0, 0), (1, 0), (0, 1), (1, 1)})
    allocator.allocate_explicit("vm2", {(6, 0), (7, 0), (6, 1), (7, 1)})
    allocator.allocate_explicit("vm3", {(6, 6), (7, 6), (6, 7), (7, 7)})
    assert audit_chip(chip, allocator.domains) == []
