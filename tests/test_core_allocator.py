"""Domain allocation: placement quality, exclusivity, release."""

import pytest

from repro.core.allocator import DomainAllocator
from repro.core.chip import Chip, ChipConfig
from repro.core.domain import is_convex
from repro.errors import AllocationError


def test_allocates_requested_size_or_slightly_more():
    allocator = DomainAllocator(Chip())
    domain = allocator.allocate("vm", 6)
    assert 6 <= domain.size <= 6  # 6 = 2x3 or 1x6 rectangles exist
    assert is_convex(domain.nodes)


def test_allocation_is_convex_and_avoids_shared_column():
    allocator = DomainAllocator(Chip())
    domain = allocator.allocate("vm", 10)
    assert is_convex(domain.nodes)
    chip = Chip()
    assert all(not chip.is_shared(node) for node in domain.nodes)


def test_allocations_are_mutually_exclusive():
    allocator = DomainAllocator(Chip())
    a = allocator.allocate("a", 8)
    b = allocator.allocate("b", 8)
    assert a.nodes.isdisjoint(b.nodes)


def test_prefers_placement_near_shared_column():
    allocator = DomainAllocator(Chip())
    domain = allocator.allocate("vm", 4)
    xs = [x for x, _ in domain.nodes]
    centroid = sum(xs) / len(xs)
    # The shared column is at x=4; a fresh chip should place adjacent.
    assert abs(centroid - 4) <= 1.5


def test_release_returns_capacity():
    allocator = DomainAllocator(Chip())
    before = allocator.free_nodes
    allocator.allocate("vm", 12)
    assert allocator.free_nodes == before - 12
    allocator.release("vm")
    assert allocator.free_nodes == before


def test_exhaustion_raises():
    allocator = DomainAllocator(Chip())
    # The shared column splits the chip into a 4x8 and a 3x8 region.
    allocator.allocate("west", 32)
    allocator.allocate("east", 24)
    assert allocator.free_nodes == 0
    with pytest.raises(AllocationError):
        allocator.allocate("more", 1)


def test_rectangle_cannot_straddle_shared_column():
    allocator = DomainAllocator(Chip())
    # 33 nodes exceeds the largest compute rectangle (4x8 west of the
    # column) even though 56 are free.
    with pytest.raises(AllocationError):
        allocator.allocate("wide", 33)


def test_fragmentation_raises_even_with_enough_total():
    # A 1-wide chip strip: allocate the two ends, leaving scattered
    # space that cannot host a 4-node rectangle contiguously.
    chip = Chip(ChipConfig(width=3, height=8, shared_columns=(1,)))
    allocator = DomainAllocator(chip)
    # Columns 0 and 2 are free (8 nodes each). Claim 6 of column 0 and
    # 6 of column 2, leaving 2+2 split nodes: no 4-rectangle fits.
    allocator.allocate_explicit("a", {(0, y) for y in range(6)})
    allocator.allocate_explicit("b", {(2, y) for y in range(6)})
    with pytest.raises(AllocationError):
        allocator.allocate("c", 4)


def test_allocate_explicit_checks_freeness():
    allocator = DomainAllocator(Chip())
    allocator.allocate_explicit("a", {(0, 0)})
    with pytest.raises(AllocationError):
        allocator.allocate_explicit("b", {(0, 0)})


def test_rejects_nonpositive_and_oversized_requests():
    allocator = DomainAllocator(Chip())
    with pytest.raises(AllocationError):
        allocator.allocate("vm", 0)
    with pytest.raises(AllocationError):
        allocator.allocate("vm", 57)


def test_is_free_tracking():
    allocator = DomainAllocator(Chip())
    assert allocator.is_free((0, 0))
    assert not allocator.is_free((4, 0))  # shared column, never free
    allocator.allocate_explicit("a", {(0, 0)})
    assert not allocator.is_free((0, 0))
