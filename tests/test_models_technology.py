"""Technology parameters: validation and voltage scaling."""

import math

import pytest

from repro.errors import ModelError
from repro.models.technology import DEFAULT_TECHNOLOGY, TechnologyParameters


def test_defaults_match_paper_targets():
    assert DEFAULT_TECHNOLOGY.process_nm == 32
    assert DEFAULT_TECHNOLOGY.voltage == 0.9
    assert DEFAULT_TECHNOLOGY.flit_bits == 128  # 16-byte links


def test_rejects_nonpositive_process():
    with pytest.raises(ModelError):
        TechnologyParameters(process_nm=0)


def test_rejects_out_of_range_voltage():
    with pytest.raises(ModelError):
        TechnologyParameters(voltage=2.5)


def test_rejects_nonpositive_coefficients():
    with pytest.raises(ModelError):
        TechnologyParameters(sram_um2_per_bit=0.0)
    with pytest.raises(ModelError):
        TechnologyParameters(wire_pj_per_mm=-1.0)


def test_voltage_scaling_is_quadratic():
    scaled = DEFAULT_TECHNOLOGY.scaled_to_voltage(0.45)
    ratio = (0.45 / 0.9) ** 2
    assert math.isclose(
        scaled.buffer_pj_per_flit, DEFAULT_TECHNOLOGY.buffer_pj_per_flit * ratio
    )
    assert math.isclose(
        scaled.wire_pj_per_mm, DEFAULT_TECHNOLOGY.wire_pj_per_mm * ratio
    )


def test_voltage_scaling_leaves_area_constants():
    scaled = DEFAULT_TECHNOLOGY.scaled_to_voltage(0.45)
    assert scaled.sram_um2_per_bit == DEFAULT_TECHNOLOGY.sram_um2_per_bit
    assert scaled.xbar_track_pitch_um == DEFAULT_TECHNOLOGY.xbar_track_pitch_um


def test_frozen():
    with pytest.raises(Exception):
        DEFAULT_TECHNOLOGY.voltage = 1.0  # type: ignore[misc]
