"""Event tracing: recording, eviction, queries, engine integration."""

import pytest

from repro.errors import ConfigurationError
from repro.network.config import SimulationConfig
from repro.network.trace import TraceEvent, TraceKind, TraceRecorder
from repro.traffic.workloads import workload1

from helpers import build_simulator


def test_capacity_validation():
    with pytest.raises(ConfigurationError):
        TraceRecorder(capacity=0)


def test_record_and_query():
    recorder = TraceRecorder(capacity=10)
    recorder.record(5, TraceKind.CREATE, pid=1, flow_id=0, where="node0")
    recorder.record(6, TraceKind.WIN, pid=1, flow_id=0, where="S0@0")
    assert len(recorder.events) == 2
    assert recorder.events_of_packet(1)[0].kind is TraceKind.CREATE
    assert recorder.count(TraceKind.WIN) == 1


def test_ring_buffer_eviction_keeps_counts():
    recorder = TraceRecorder(capacity=3)
    for cycle in range(10):
        recorder.record(cycle, TraceKind.WIN, pid=cycle, flow_id=0, where="p")
    assert len(recorder.events) == 3
    assert recorder.dropped == 7
    assert recorder.count(TraceKind.WIN) == 10
    assert "dropped" in recorder.format_tail(5)


def test_event_string_rendering():
    event = TraceEvent(12, TraceKind.PREEMPT, 7, 3, "mS0@4", "wasted_tiles=2")
    text = str(event)
    assert "preempt" in text
    assert "pkt=7" in text
    assert "wasted_tiles=2" in text


def test_empty_tail():
    assert TraceRecorder().format_tail() == "(no events)"


def test_engine_emits_lifecycle_events():
    sim = build_simulator("mesh_x1")
    recorder = TraceRecorder(capacity=100_000)
    recorder.attach(sim)
    sim.run(1500)
    assert recorder.count(TraceKind.CREATE) > 0
    assert recorder.count(TraceKind.INJECT) > 0
    assert recorder.count(TraceKind.WIN) > 0
    assert recorder.count(TraceKind.DELIVER) > 0
    # Every delivered packet was created and injected first.
    assert recorder.count(TraceKind.DELIVER) <= recorder.count(TraceKind.CREATE)


def test_packet_life_story_is_ordered():
    sim = build_simulator("dps")
    recorder = TraceRecorder(capacity=100_000)
    recorder.attach(sim)
    sim.run(800)
    delivered = recorder.events_of_kind(TraceKind.DELIVER)
    assert delivered, "need at least one delivery to inspect"
    story = recorder.events_of_packet(delivered[0].pid)
    kinds = [event.kind for event in story]
    assert kinds[0] is TraceKind.CREATE
    assert kinds[-1] is TraceKind.DELIVER
    cycles = [event.cycle for event in story]
    assert cycles == sorted(cycles)


def test_preemptions_produce_nack_then_reinject():
    config = SimulationConfig(
        frame_cycles=4000, seed=3, preemption_patience_cycles=4
    )
    sim = build_simulator("mesh_x2", workload1(), config=config)
    recorder = TraceRecorder(capacity=500_000)
    recorder.attach(sim)
    sim.run(10_000)
    assert recorder.count(TraceKind.PREEMPT) > 0
    # Every preemption produces a NACK; a few may still be in flight on
    # the ACK network when the run stops.
    assert 0 < recorder.count(TraceKind.NACK) <= recorder.count(TraceKind.PREEMPT)
    # A preempted packet's story shows preempt -> nack -> inject again.
    victim = recorder.events_of_kind(TraceKind.PREEMPT)[0]
    story = recorder.events_of_packet(victim.pid)
    kinds = [event.kind for event in story]
    preempt_at = kinds.index(TraceKind.PREEMPT)
    assert TraceKind.NACK in kinds[preempt_at:]


def test_untraced_runs_unaffected():
    baseline = build_simulator("dps").run(1000).summary()
    traced_sim = build_simulator("dps")
    TraceRecorder().attach(traced_sim)
    traced = traced_sim.run(1000).summary()
    assert baseline == traced


class TestOverflowPolicy:
    """TraceRecorder behaviour at capacity is explicit and documented."""

    def fill(self, recorder, n):
        for i in range(n):
            recorder.record(i, TraceKind.CREATE, i, 0, "node0")

    def test_drop_oldest_is_the_default(self):
        recorder = TraceRecorder(capacity=10)
        assert recorder.overflow == "drop_oldest"
        self.fill(recorder, 25)
        assert len(recorder.events) == 10
        assert recorder.dropped == 15
        # The tail is the freshest history; totals still count evictions.
        assert recorder.events[0].pid == 15
        assert recorder.count(TraceKind.CREATE) == 25

    def test_raise_mode_raises_at_capacity(self):
        from repro.errors import TraceOverflowError

        recorder = TraceRecorder(capacity=10, overflow="raise")
        self.fill(recorder, 10)
        with pytest.raises(TraceOverflowError):
            recorder.record(10, TraceKind.CREATE, 10, 0, "node0")
        # Nothing was silently dropped before the raise.
        assert len(recorder.events) == 10
        assert recorder.dropped == 0

    def test_unknown_overflow_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceRecorder(capacity=10, overflow="wrap")
