"""Incremental priority cache: invalidation and lazy-flush semantics.

The saturation hot path reads PVC priorities from a per-(router, flow)
cache in the :class:`~repro.qos.flow_table.FlowTable`, invalidated only
by charges, refunds and frame flushes.  These tests pin the invalidation
rules directly, and a property test checks the lazily-flushed table
against an eagerly-zeroed reference over arbitrary operation sequences.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.config import SimulationConfig
from repro.network.fabric import Station
from repro.network.packet import FlowSpec, Packet
from repro.qos.flow_table import FlowTable
from repro.qos.perflow import PerFlowQueuedPolicy
from repro.qos.pvc import PvcPolicy


def _station(node: int) -> Station:
    return Station(
        index=node, node=node, label=f"s@{node}", kind="mesh",
        n_vcs=1, va_wait=1, qos=True,
    )


def _packet(flow_id: int, size: int = 4) -> Packet:
    return Packet(pid=flow_id, flow_id=flow_id, src=0, dst=1,
                  size=size, created_at=0)


def _pvc(n_flows: int = 2, n_nodes: int = 4) -> PvcPolicy:
    policy = PvcPolicy()
    flows = [
        FlowSpec(node=i % n_nodes, rate=0.1) for i in range(n_flows)
    ]
    policy.bind(n_nodes, flows, SimulationConfig(frame_cycles=1000))
    return policy


def test_priority_cache_returns_table_for_cacheable_policies():
    policy = _pvc()
    assert policy.priority_cache() is policy.table
    perflow = PerFlowQueuedPolicy()
    perflow.bind(2, [FlowSpec(node=0, rate=0.1)], SimulationConfig())
    assert perflow.priority_cache() is perflow.table


def test_charge_invalidates_cached_priority():
    policy = _pvc()
    station, packet = _station(1), _packet(0)
    before = policy.priority(station, packet, now=10)
    # A cached read returns the identical value.
    assert policy.priority(station, packet, now=11) == before
    policy.on_forward(station, packet, now=12)  # charge 4 flits
    after = policy.priority(station, packet, now=13)
    assert after > before
    expected = policy.table.consumed(1, 0) / 1.0  # default flow weight
    assert after == expected


def test_refund_after_preemption_restores_priority():
    policy = _pvc()
    station, packet = _station(2), _packet(0)
    baseline = policy.priority(station, packet, now=0)
    policy.on_forward(station, packet, now=5)
    charged = policy.priority(station, packet, now=6)
    assert charged > baseline
    policy.on_refund(station, packet, now=7)
    assert policy.priority(station, packet, now=8) == baseline
    assert policy.table.consumed(2, 0) == 0


def test_frame_flush_resets_every_cached_value():
    policy = _pvc(n_flows=3)
    stations = [_station(n) for n in range(3)]
    for node, station in enumerate(stations):
        for flow_id in range(3):
            policy.on_forward(station, _packet(flow_id), now=node)
    primed = [
        policy.priority(station, _packet(flow_id), now=50)
        for station in stations
        for flow_id in range(3)
    ]
    assert any(value > 0 for value in primed)
    policy.on_frame(now=1000)
    for station in stations:
        for flow_id in range(3):
            assert policy.priority(station, _packet(flow_id), now=1001) == 0.0


def test_compliance_boundary_cache_matches_direct_predicate():
    policy = _pvc()
    station, packet = _station(1), _packet(0, size=6)
    policy.on_forward(station, packet, now=3)  # consumed = 6
    # Evaluate (and cache) at several cycles; each answer must equal the
    # textbook predicate consumed + size <= rate*elapsed + slack.
    for now in (3, 10, 100, 400, 700):
        expected = (
            policy.table.consumed(1, 0) + packet.size
            <= policy._compliance_rate * policy.table.elapsed_in_frame(now)
            + 4.0
        )
        assert policy.is_rate_compliant(station, packet, now) is expected


class _EagerTable:
    """Reference flow table that zeroes all counters on every flush."""

    def __init__(self, n_nodes: int, n_flows: int) -> None:
        self.counters = [[0] * n_flows for _ in range(n_nodes)]
        self.frame_start = 0

    def charge(self, node: int, flow_id: int, flits: int) -> None:
        self.counters[node][flow_id] += flits

    def consumed(self, node: int, flow_id: int) -> int:
        return self.counters[node][flow_id]

    def flush(self, now: int) -> None:
        for row in self.counters:
            row[:] = [0] * len(row)
        self.frame_start = now

    def snapshot(self, node: int) -> list[int]:
        return list(self.counters[node])


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("charge"), st.integers(0, 3), st.integers(0, 4),
                  st.integers(-3, 9)),
        st.tuples(st.just("flush"), st.integers(0, 3), st.integers(0, 4),
                  st.integers(0, 0)),
    ),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(ops=_OPS)
def test_lazy_flush_matches_eager_reference(ops):
    lazy = FlowTable(n_nodes=4, n_flows=5)
    eager = _EagerTable(n_nodes=4, n_flows=5)
    clock = 0
    for kind, node, flow, flits in ops:
        clock += 1
        if kind == "charge":
            lazy.charge(node, flow, flits)
            eager.charge(node, flow, flits)
        else:
            lazy.flush(clock)
            eager.flush(clock)
            assert lazy.frame_start == eager.frame_start
        assert lazy.consumed(node, flow) == eager.consumed(node, flow)
    for node in range(4):
        assert lazy.snapshot(node) == eager.snapshot(node)
