"""RouterGeometry and BufferBank arithmetic."""

import pytest

from repro.errors import ModelError
from repro.models.geometry import BufferBank, RouterGeometry, standard_row_banks


def test_buffer_bank_bits():
    bank = BufferBank(ports=2, vcs_per_port=6, flits_per_vc=4)
    assert bank.bits(128) == 2 * 6 * 4 * 128


def test_buffer_bank_rejects_bad_dims():
    with pytest.raises(ModelError):
        BufferBank(ports=-1, vcs_per_port=6)
    with pytest.raises(ModelError):
        BufferBank(ports=1, vcs_per_port=1, flits_per_vc=0)


def _geometry(**overrides):
    defaults = dict(
        name="test",
        row_banks=standard_row_banks(),
        column_banks=(BufferBank(2, 6),),
        crossbar_inputs=5,
        crossbar_outputs=5,
    )
    defaults.update(overrides)
    return RouterGeometry(**defaults)


def test_standard_row_banks_shape():
    row, terminal = standard_row_banks()
    assert row.ports == 7  # seven MECS row inputs (Section 4)
    assert terminal.ports == 1


def test_buffer_bits_includes_and_excludes_rows():
    geometry = _geometry()
    with_rows = geometry.buffer_bits(128)
    without = geometry.buffer_bits(128, include_row=False)
    assert with_rows - without == geometry.row_buffer_bits(128)
    assert without == 2 * 6 * 4 * 128


def test_flow_table_bits_with_copies():
    geometry = _geometry(flow_table_copies=8)
    assert geometry.flow_table_bits() == 64 * 16 * 8


def test_total_vcs_counts_all_banks():
    geometry = _geometry()
    expected = 7 * 6 + 1 * 2 + 2 * 6
    assert geometry.total_vcs() == expected


def test_rejects_nonpositive_crossbar():
    with pytest.raises(ModelError):
        _geometry(crossbar_inputs=0)


def test_rejects_negative_wire():
    with pytest.raises(ModelError):
        _geometry(xbar_avg_input_wire_mm=-1.0)
