"""Engine edge cases: frames, windows, drains, overflow VCs, timing."""

import pytest

from repro.errors import SimulationError
from repro.network.config import SimulationConfig
from repro.network.packet import FlowSpec
from repro.qos.perflow import PerFlowQueuedPolicy
from repro.traffic.patterns import hotspot

from helpers import build_simulator


def _flow(node=0, dst=7, rate=0.3, limit=None, weight=1.0):
    return FlowSpec(
        node=node, rate=rate, weight=weight,
        pattern=lambda s, rng: dst, packet_limit=limit,
    )


def test_run_until_drained_raises_when_stuck():
    # An injector that can never drain within the budget.
    sim = build_simulator("mesh_x1", [_flow(rate=0.9, limit=500)])
    with pytest.raises(SimulationError):
        sim.run_until_drained(max_cycles=50)


def test_run_until_drained_idle_workload_returns_immediately():
    sim = build_simulator("mesh_x1", [_flow(rate=0.0, limit=0)])
    done = sim.run_until_drained(max_cycles=100)
    assert done == 0


def test_frame_rollover_with_packets_in_flight():
    config = SimulationConfig(frame_cycles=50, seed=3)
    sim = build_simulator("dps", [_flow(rate=0.4)], config=config)
    stats = sim.run(2000)
    # Many frame boundaries crossed mid-flight; traffic still flows and
    # conservation-style invariants hold.
    assert stats.delivered_packets > 0
    assert stats.wasted_tiles <= stats.total_tiles


def test_carried_priority_cleared_at_frame_flush():
    config = SimulationConfig(frame_cycles=40, seed=3)
    sim = build_simulator("dps", [_flow(rate=0.8)], config=config)
    sim.run(41)  # crosses one flush
    for station in sim.fabric.stations:
        for vc in station.vcs:
            if vc.packet is not None:
                assert vc.packet.carried_priority == 0.0


def test_overflow_vcs_grow_only_for_perflow_policy():
    pvc_sim = build_simulator("mesh_x1", [_flow(rate=0.6)])
    pvc_sim.run(500)
    for station in pvc_sim.fabric.stations:
        assert not station.allow_overflow

    baseline = build_simulator(
        "mesh_x1",
        [_flow(node=n, rate=0.6) for n in range(4)],
        policy=PerFlowQueuedPolicy(),
    )
    baseline.run(500)
    assert any(station.allow_overflow for station in baseline.fabric.stations)


def test_run_window_counts_only_window_flits():
    sim = build_simulator("mecs", [_flow(rate=0.2)])
    stats = sim.run_window(500, 1000)
    total_window = sum(stats.window_flits_per_flow)
    assert 0 < total_window <= stats.delivered_flits


def test_multiple_flows_one_node_different_ports():
    flows = [
        FlowSpec(node=0, port="terminal", rate=0.2, pattern=hotspot(7)),
        FlowSpec(node=0, port="east0", rate=0.2, pattern=hotspot(7)),
        FlowSpec(node=0, port="west2", rate=0.2, pattern=hotspot(7)),
    ]
    sim = build_simulator("dps", flows)
    stats = sim.run(3000)
    assert all(c > 0 for c in stats.delivered_packets_per_flow)


def test_east_group_shares_one_flit_per_cycle():
    # Four east injectors at one node share a crossbar input line, so
    # their combined throughput cannot exceed the window length.
    flows = [
        FlowSpec(node=3, port=f"east{i}", rate=0.9,
                 pattern=lambda s, rng: 0, size_mix=((1, 1.0),))
        for i in range(4)
    ]
    sim = build_simulator("mecs", flows)
    stats = sim.run_window(500, 1500)
    assert sum(stats.window_flits_per_flow) <= 1500


def test_four_flit_packets_serialise_on_links():
    # A saturated 4-flit flow can deliver at most cycles/1 flits and
    # at most cycles/4 packets through its single injection slot chain.
    flows = [_flow(rate=1.0)]
    sim = build_simulator("mecs", flows)
    stats = sim.run_window(500, 2000)
    assert sum(stats.window_flits_per_flow) <= 2000
    assert stats.delivered_packets <= stats.delivered_flits


def test_weighted_priority_prefers_heavy_flow_under_contention():
    flows = [
        _flow(node=1, dst=0, rate=0.8, weight=4.0),
        _flow(node=2, dst=0, rate=0.8, weight=1.0),
    ]
    sim = build_simulator("mesh_x1", flows)
    stats = sim.run_window(1000, 6000)
    heavy, light = stats.window_flits_per_flow
    assert heavy > 1.5 * light


def test_zero_rate_flow_is_legal_and_silent():
    sim = build_simulator("dps", [_flow(rate=0.0)])
    stats = sim.run(500)
    assert stats.created_packets == 0
    assert stats.delivered_packets == 0


def test_stats_survive_multiple_run_windows():
    sim = build_simulator("mesh_x1", [_flow(rate=0.1)])
    sim.run_window(100, 400)
    first = sum(sim.stats.window_flits_per_flow)
    sim.run_window(100, 400)  # second window, later in time
    assert sum(sim.stats.window_flits_per_flow) >= first
