"""Hypervisor: admission, co-scheduling, rate programming."""

import pytest

from repro.core.chip import Chip
from repro.core.hypervisor import Hypervisor
from repro.errors import AllocationError


@pytest.fixture
def hypervisor():
    return Hypervisor(Chip())


def test_admit_sizes_domain_for_threads(hypervisor):
    vm = hypervisor.admit("web", n_threads=10, weight=2.0)
    # 10 threads / 4-way concentration -> 3 nodes.
    assert vm.domain.size == 3
    assert len(vm.thread_placement) == 10


def test_threads_co_scheduled_at_most_four_per_node(hypervisor):
    vm = hypervisor.admit("web", n_threads=16)
    for node in vm.domain.nodes:
        assert len(vm.threads_on(node)) <= 4


def test_co_scheduling_invariant_across_vms(hypervisor):
    hypervisor.admit("a", 8)
    hypervisor.admit("b", 12)
    hypervisor.admit("c", 4)
    assert hypervisor.co_scheduling_ok()


def test_rates_programmed_at_every_shared_router(hypervisor):
    hypervisor.admit("web", 8, weight=2.5)
    for node in hypervisor.chip.shared_nodes():
        assert hypervisor.programmed_weight(node, "web") == 2.5


def test_evict_releases_domain_and_clears_registers(hypervisor):
    hypervisor.admit("web", 8, weight=2.5)
    free_before = hypervisor.allocator.free_nodes
    hypervisor.evict("web")
    assert hypervisor.allocator.free_nodes == free_before + 2
    assert hypervisor.programmed_weight((4, 0), "web") is None
    assert "web" not in hypervisor.vms


def test_duplicate_admission_rejected(hypervisor):
    hypervisor.admit("web", 4)
    with pytest.raises(AllocationError):
        hypervisor.admit("web", 4)


def test_evict_unknown_rejected(hypervisor):
    with pytest.raises(AllocationError):
        hypervisor.evict("ghost")


def test_zero_thread_vm_rejected(hypervisor):
    with pytest.raises(AllocationError):
        hypervisor.admit("empty", 0)


def test_programmed_weight_missing_lookups(hypervisor):
    hypervisor.admit("web", 4, weight=1.5)
    assert hypervisor.programmed_weight((0, 0), "web") is None  # not shared
    assert hypervisor.programmed_weight((4, 0), "ghost") is None


def test_admission_fills_chip_until_exhaustion(hypervisor):
    # 56 compute nodes x 4 threads = 224 thread slots.
    hypervisor.admit("big1", 96)   # 24 nodes
    hypervisor.admit("big2", 96)   # 24 nodes
    with pytest.raises(AllocationError):
        hypervisor.admit("big3", 64)  # 16 nodes > 8 left
