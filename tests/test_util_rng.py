"""DeterministicRng: reproducibility and draw semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.util.rng import DeterministicRng


def test_same_seed_same_sequence():
    a = DeterministicRng(42)
    b = DeterministicRng(42)
    assert [a.uniform_int(0, 100) for _ in range(50)] == [
        b.uniform_int(0, 100) for _ in range(50)
    ]


def test_different_seeds_diverge():
    a = DeterministicRng(1)
    b = DeterministicRng(2)
    assert [a.uniform_int(0, 10**6) for _ in range(10)] != [
        b.uniform_int(0, 10**6) for _ in range(10)
    ]


def test_spawn_is_deterministic():
    parent1 = DeterministicRng(9)
    parent2 = DeterministicRng(9)
    assert parent1.spawn(3).random() == parent2.spawn(3).random()


def test_spawn_children_are_independent():
    parent = DeterministicRng(9)
    child_a = parent.spawn(0)
    child_b = parent.spawn(1)
    assert [child_a.random() for _ in range(5)] != [
        child_b.random() for _ in range(5)
    ]


def test_bernoulli_extremes():
    rng = DeterministicRng(0)
    assert not rng.bernoulli(0.0)
    assert rng.bernoulli(1.0)
    assert not rng.bernoulli(-0.5)
    assert rng.bernoulli(1.5)


def test_bernoulli_rate_statistics():
    rng = DeterministicRng(11)
    hits = sum(rng.bernoulli(0.3) for _ in range(20_000))
    assert 0.27 < hits / 20_000 < 0.33


def test_geometric_matches_bernoulli_trial_sequence():
    # geometric(p) must consume the uniform stream exactly as repeated
    # bernoulli(p) calls would — that bit-compatibility is what keeps
    # the activity-tracked engine's packet schedule identical to the
    # per-cycle-draw reference engine.
    for probability in (0.004, 0.1, 0.5, 0.97):
        trial_rng = DeterministicRng(21)
        geo_rng = DeterministicRng(21)
        for _ in range(200):
            trials = 1
            while not trial_rng.bernoulli(probability):
                trials += 1
            assert geo_rng.geometric(probability) == trials
        # Streams remain aligned after interleaved other draws.
        assert trial_rng.random() == geo_rng.random()


def test_geometric_certain_success_consumes_no_draws():
    rng = DeterministicRng(8)
    reference = DeterministicRng(8)
    assert rng.geometric(1.0) == 1
    assert rng.geometric(2.0) == 1
    assert rng.random() == reference.random()


def test_geometric_rejects_nonpositive_probability():
    rng = DeterministicRng(8)
    with pytest.raises(ValueError):
        rng.geometric(0.0)
    with pytest.raises(ValueError):
        rng.geometric(-0.1)


def test_geometric_mean_matches_distribution():
    rng = DeterministicRng(13)
    samples = [rng.geometric(0.2) for _ in range(20_000)]
    mean = sum(samples) / len(samples)
    assert 4.75 < mean < 5.25  # E[geometric(0.2)] = 5
    assert min(samples) >= 1


def test_choice_index_respects_weights():
    rng = DeterministicRng(5)
    counts = [0, 0]
    for _ in range(10_000):
        counts[rng.choice_index([1.0, 3.0])] += 1
    assert 0.20 < counts[0] / 10_000 < 0.30


def test_choice_index_rejects_zero_weights():
    rng = DeterministicRng(5)
    with pytest.raises(ValueError):
        rng.choice_index([0.0, 0.0])


@given(st.integers(min_value=0, max_value=2**30), st.integers(0, 50))
def test_uniform_int_in_bounds(seed, high):
    rng = DeterministicRng(seed)
    value = rng.uniform_int(0, high)
    assert 0 <= value <= high


def test_shuffle_is_permutation():
    rng = DeterministicRng(3)
    items = list(range(20))
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items
