"""Property-based route invariants across every topology.

For any (topology, src, dst, replica):

* the route terminates with an ejection segment at the destination;
* stations and segments are aligned and consistent;
* tile spans sum to the Manhattan distance along the column;
* every intermediate station sits on the geometric path;
* wire delays equal tile spans (1 cycle per tile, Table 1).
"""

from hypothesis import given, settings, strategies as st

from repro.network.config import COLUMN_NODES
from repro.network.packet import RouteRequest
from repro.topologies.registry import TOPOLOGY_NAMES, get_topology

_BUILDS = {name: get_topology(name).build() for name in TOPOLOGY_NAMES}

nodes = st.integers(min_value=0, max_value=COLUMN_NODES - 1)


def _route(name, src, dst, replica=0):
    build = _BUILDS[name]
    request = RouteRequest(
        src_node=src,
        dst_node=dst,
        injection_station=build.injection_station[(src, "terminal")],
        replica_hint=replica,
    )
    return build, *build.route_builder(request)


@given(st.sampled_from(TOPOLOGY_NAMES), nodes, nodes, st.integers(0, 7))
@settings(max_examples=300, deadline=None)
def test_route_shape_invariants(name, src, dst, replica):
    build, stations, segments = _route(name, src, dst, replica)
    assert len(stations) == len(segments)
    # Final segment ejects at the destination terminal.
    last_port, last_wire, last_span, last_next = segments[-1]
    assert last_next == -1
    assert last_port == build.ejection_ports[dst]
    assert last_wire == 0 and last_span == 0
    # Earlier segments chain into the next station in the list.
    for index, (port, wire, span, nxt) in enumerate(segments[:-1]):
        assert nxt == stations[index + 1]
        assert wire == span  # 1 cycle per tile spanned
        assert not build.ports[port].is_ejection


@given(st.sampled_from(TOPOLOGY_NAMES), nodes, nodes)
@settings(max_examples=300, deadline=None)
def test_route_distance_conservation(name, src, dst):
    build, stations, segments = _route(name, src, dst)
    total_span = sum(span for _, _, span, _ in segments)
    assert total_span == abs(dst - src)


@given(st.sampled_from(TOPOLOGY_NAMES), nodes, nodes)
@settings(max_examples=300, deadline=None)
def test_route_stations_lie_between_endpoints(name, src, dst):
    build, stations, segments = _route(name, src, dst)
    low, high = min(src, dst), max(src, dst)
    for station_index in stations:
        node = build.stations[station_index].node
        assert low <= node <= high
    # Destination station(s) end at the destination node.
    assert build.stations[stations[-1]].node == dst


@given(st.sampled_from(TOPOLOGY_NAMES), nodes, nodes)
@settings(max_examples=200, deadline=None)
def test_route_is_deterministic(name, src, dst):
    _, stations_a, segments_a = _route(name, src, dst)
    _, stations_b, segments_b = _route(name, src, dst)
    assert stations_a == stations_b
    assert segments_a == segments_b


@given(nodes, nodes, st.integers(0, 3))
@settings(max_examples=200, deadline=None)
def test_mesh_x4_replica_routes_are_parallel(src, dst, replica):
    build, stations, segments = _route("mesh_x4", src, dst, replica)
    if src == dst:
        return
    # A route never mixes replicas: all its column ports carry the
    # replica's index in their label.
    labels = {build.ports[seg[0]].label[1] for seg in segments[:-1]}
    assert labels == {str(replica)}
