"""Chip geometry: grids, shared columns, MECS reachability."""

import pytest

from repro.core.chip import Chip, ChipConfig, NodeKind
from repro.errors import ConfigurationError


def test_default_is_8x8_with_middle_column():
    chip = Chip()
    assert chip.config.width == 8
    assert chip.config.height == 8
    assert chip.config.shared_columns == (4,)


def test_tile_accounting():
    chip = Chip()
    # 56 compute nodes x 4 terminals + 8 shared nodes x 1 terminal.
    assert chip.config.total_tiles == 56 * 4 + 8


def test_node_kinds():
    chip = Chip()
    assert chip.node_kind((4, 3)) is NodeKind.SHARED
    assert chip.node_kind((3, 3)) is NodeKind.COMPUTE
    assert chip.is_shared((4, 0))
    assert not chip.is_shared((0, 0))


def test_terminals_at():
    chip = Chip()
    assert chip.terminals_at((4, 2)) == 1
    assert chip.terminals_at((2, 2)) == 4


def test_compute_and_shared_partitions():
    chip = Chip()
    compute = set(chip.compute_nodes())
    shared = set(chip.shared_nodes())
    assert len(compute) == 56
    assert len(shared) == 8
    assert compute.isdisjoint(shared)


def test_out_of_bounds_rejected():
    chip = Chip()
    with pytest.raises(ConfigurationError):
        chip.node_kind((8, 0))
    assert not chip.in_bounds((-1, 0))


def test_nearest_shared_column_multiple():
    chip = Chip(ChipConfig(shared_columns=(2, 6)))
    assert chip.nearest_shared_column((0, 0)) == 2
    assert chip.nearest_shared_column((7, 0)) == 6
    assert chip.nearest_shared_column((4, 0)) == 2  # tie goes low


def test_single_hop_to_shared_is_same_row():
    chip = Chip()
    entry = chip.single_hop_to_shared((1, 5))
    assert entry == (4, 5)
    assert chip.is_shared(entry)


def test_mecs_row_reachability():
    chip = Chip()
    assert chip.mecs_row_reachable((0, 3), (7, 3))
    assert not chip.mecs_row_reachable((0, 3), (0, 4))
    assert not chip.mecs_row_reachable((0, 3), (0, 3))


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ChipConfig(width=0)
    with pytest.raises(ConfigurationError):
        ChipConfig(concentration=0)
    with pytest.raises(ConfigurationError):
        ChipConfig(shared_columns=())
    with pytest.raises(ConfigurationError):
        ChipConfig(shared_columns=(9,))
    with pytest.raises(ConfigurationError):
        ChipConfig(shared_columns=(4, 4))
