"""Property-based engine invariants (hypothesis).

For randomly drawn small workloads on random topologies:

* conservation: after draining a finite workload, every created packet
  is delivered exactly once (despite preemptions and replays);
* accounting: statistics are internally consistent and bounded;
* determinism: identical (seed, workload, topology) -> identical stats.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.network.config import SimulationConfig
from repro.network.engine import ColumnSimulator
from repro.network.packet import FlowSpec
from repro.qos.perflow import PerFlowQueuedPolicy
from repro.qos.pvc import PvcPolicy
from repro.topologies.registry import EXTENDED_TOPOLOGY_NAMES, get_topology

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

flow_strategy = st.builds(
    FlowSpec,
    node=st.integers(0, 7),
    rate=st.floats(min_value=0.02, max_value=0.4),
    weight=st.floats(min_value=0.5, max_value=4.0),
    pattern=st.just(lambda src, rng: (src + 3) % 8),
    packet_limit=st.integers(min_value=1, max_value=25),
)


def _dedupe(flows):
    """Keep at most one flow per injector slot."""
    seen = set()
    unique = []
    for flow in flows:
        key = (flow.node, flow.port)
        if key not in seen:
            seen.add(key)
            unique.append(flow)
    return unique


@given(
    st.sampled_from(EXTENDED_TOPOLOGY_NAMES),
    st.lists(flow_strategy, min_size=1, max_size=5).map(_dedupe),
    st.integers(0, 2**16),
)
@_SETTINGS
def test_finite_workloads_conserve_packets(name, flows, seed):
    config = SimulationConfig(
        frame_cycles=3000, seed=seed, preemption_patience_cycles=4
    )
    simulator = ColumnSimulator(
        get_topology(name).build(config), flows, PvcPolicy(), config
    )
    simulator.run_until_drained(max_cycles=300_000)
    stats = simulator.stats
    assert stats.delivered_packets == stats.created_packets
    assert stats.delivered_flits == stats.created_flits
    expected = sum(flow.packet_limit for flow in flows)
    assert stats.created_packets == expected


@given(
    st.sampled_from(EXTENDED_TOPOLOGY_NAMES),
    st.lists(flow_strategy, min_size=1, max_size=4).map(_dedupe),
    st.integers(0, 2**16),
)
@_SETTINGS
def test_statistics_are_internally_consistent(name, flows, seed):
    config = SimulationConfig(frame_cycles=3000, seed=seed)
    simulator = ColumnSimulator(
        get_topology(name).build(config), flows, PvcPolicy(), config
    )
    stats = simulator.run(2500)
    assert 0 <= stats.delivered_packets <= stats.created_packets
    assert stats.wasted_tiles <= stats.total_tiles
    assert 0.0 <= stats.wasted_hop_fraction <= 1.0
    assert stats.replays == stats.preemption_events
    assert len(stats.preempted_pids) <= stats.preemption_events or (
        stats.preemption_events == 0
    )
    assert sum(stats.delivered_packets_per_flow) == stats.delivered_packets


@given(
    st.sampled_from(("mesh_x2", "dps")),
    st.lists(flow_strategy, min_size=1, max_size=3).map(_dedupe),
    st.integers(0, 2**10),
)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_determinism_property(name, flows, seed):
    config = SimulationConfig(frame_cycles=3000, seed=seed)

    def run():
        simulator = ColumnSimulator(
            get_topology(name).build(config), flows, PvcPolicy(), config
        )
        return simulator.run(1500).summary()

    assert run() == run()


@given(
    st.lists(flow_strategy, min_size=1, max_size=4).map(_dedupe),
    st.integers(0, 2**10),
)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_perflow_baseline_never_discards(flows, seed):
    config = SimulationConfig(frame_cycles=3000, seed=seed)
    simulator = ColumnSimulator(
        get_topology("mesh_x1").build(config), flows, PerFlowQueuedPolicy(), config
    )
    simulator.run_until_drained(max_cycles=300_000)
    assert simulator.stats.preemption_events == 0
    assert simulator.stats.delivered_packets == simulator.stats.created_packets
