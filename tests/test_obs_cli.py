"""CLI observability: obs verbs, --profile dumps, bench obs guard."""

import json
import pstats

import pytest

from repro.cli import main
from repro.runtime.bench import (
    EnginePoint,
    format_obs_overhead,
    record_obs_baseline,
    run_obs_overhead,
    validate_engine_baseline,
)


@pytest.fixture(scope="module")
def recorded_dir(tmp_path_factory):
    """One ``repro obs record`` run shared by the read-only CLI tests."""
    out = tmp_path_factory.mktemp("obs")
    code = main([
        "obs", "record", "bursty", "--rate", "0.3", "--cycles", "1500",
        "--window", "300", "--timeline", "--out", str(out),
    ])
    assert code == 0
    return out


def test_obs_record_writes_artifact_set(recorded_dir):
    stems = {p.name.split(".", 1)[1] for p in recorded_dir.iterdir()}
    assert stems == {"metrics.jsonl", "trace.json", "run.json"}
    # All three share the spec's base-hash stem.
    assert len({p.name.split(".", 1)[0] for p in recorded_dir.iterdir()}) == 1


def test_obs_report_renders_sections(recorded_dir, capsys):
    assert main(["obs", "report", str(recorded_dir)]) == 0
    out = capsys.readouterr().out
    assert "per-window delivered flits" in out
    assert "per-window dynamics:" in out
    assert "latency histogram" in out
    assert "busiest output ports" in out


def test_obs_timeline_verifies_digest(recorded_dir, capsys):
    assert main(["obs", "timeline", str(recorded_dir)]) == 0
    out = capsys.readouterr().out
    assert "snapshot digest verified" in out
    assert "perfetto" in out


def test_obs_usage_errors(tmp_path, capsys):
    assert main(["obs"]) == 2
    assert main(["obs", "record"]) == 2
    assert "usage:" in capsys.readouterr().err
    assert main(["obs", "record", "bursty"]) == 2  # no --out / --obs
    assert "--out" in capsys.readouterr().err
    assert main(["obs", "report"]) == 2
    assert main(["obs", "report", str(tmp_path / "missing")]) == 2
    assert main(["obs", "timeline", str(tmp_path / "missing")]) == 2
    assert main(["obs", "polish"]) == 2
    assert "unknown obs action" in capsys.readouterr().err


def test_profile_writes_pstats_dump(tmp_path, monkeypatch, capsys):
    # Dumps land in the git-ignored profiles/ directory, created on
    # demand, so --profile never litters the repo root.
    monkeypatch.chdir(tmp_path)
    assert main(["fig3", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "profiles/profile_fig3.pstats" in out.replace("\\", "/")
    stats = pstats.Stats(str(tmp_path / "profiles" / "profile_fig3.pstats"))
    assert stats.total_calls > 0


TINY_POINT = EnginePoint("tiny", "mesh_x1", 0.05, 300, regime="low_rate")


def test_run_obs_overhead_tiny_point(tmp_path):
    results = run_obs_overhead(points=(TINY_POINT,), repeats=1)
    assert [r.point.name for r in results] == ["tiny"]
    result = results[0]
    assert result.stats_equal
    assert result.off_seconds > 0 and result.on_seconds > 0
    assert "tiny" in format_obs_overhead(results)
    path = tmp_path / "baseline.json"
    record_obs_baseline(results, path)
    data = json.loads(path.read_text())
    assert "tiny" in data["_obs"]["points"]


HEALTHY_POINT = {
    "regime": "saturation",
    "topology": "mecs",
    "timings_seconds": {"optimized": 1.0, "golden": 2.0},
    "speedup": 2.0,
    "stats_equal": True,
}


def test_bench_guard_flags_obs_violations(tmp_path, capsys):
    baseline = {
        "saturation_mecs_0p30": HEALTHY_POINT,
        "_obs": {
            "max_enabled_overhead": 1.5,
            "points": {
                "bad": {
                    "regime": "saturation",
                    "timings_seconds": {
                        "off": 1.0, "on": 4.0, "golden": 0.5,
                    },
                    "speedup_off": 0.5,
                    "enabled_overhead": 3.0,
                    "stats_equal": False,
                },
            },
        },
    }
    path = tmp_path / "BENCH_engine.json"
    path.write_text(json.dumps(baseline))
    violations, _ = validate_engine_baseline(path)
    assert len(violations) == 3
    assert all(v.startswith("obs:bad:") for v in violations)
    assert main(["bench", "guard", "--record", str(path)]) == 1
    out = capsys.readouterr().out
    assert "Regressions detected" in out
    assert "stats_equal is false" in out
    assert "exceeds" in out


def test_bench_guard_passes_healthy_obs_section(tmp_path, capsys):
    results = run_obs_overhead(points=(TINY_POINT,), repeats=1)
    path = tmp_path / "BENCH_engine.json"
    record_obs_baseline(results, path)
    # A freshly recorded section may legitimately report speedup_off < 1
    # on a tiny 300-cycle point (timer noise); pin the floor fields so
    # the test asserts the guard logic, not the machine's clock.
    data = json.loads(path.read_text())
    data["saturation_mecs_0p30"] = HEALTHY_POINT
    entry = data["_obs"]["points"]["tiny"]
    entry["speedup_off"] = max(entry["speedup_off"], 1.0)
    entry["enabled_overhead"] = min(entry["enabled_overhead"], 1.0)
    path.write_text(json.dumps(data))
    assert main(["bench", "guard", "--record", str(path)]) == 0
    out = capsys.readouterr().out
    assert "Probe overhead" in out
    assert "tiny" in out
