"""RunSpec: canonical serialisation and content-hash stability."""

import os
import subprocess
import sys

import pytest

from repro.errors import ConfigurationError
from repro.network.config import SimulationConfig
from repro.runtime.spec import (
    POLICIES,
    WORKLOAD_BUILDERS,
    RunResult,
    RunSpec,
    build_flows,
    execute_spec,
)

_CFG = SimulationConfig(frame_cycles=2000, seed=4)


def _spec(**overrides) -> RunSpec:
    base = dict(
        topology="dps",
        workload="full_column",
        rate=0.05,
        workload_params={"pattern": "tornado"},
        config=_CFG,
        cycles=800,
        warmup=200,
    )
    base.update(overrides)
    return RunSpec(**base)


def test_identical_specs_share_a_hash():
    assert _spec().content_hash == _spec().content_hash
    assert _spec() == _spec()


def test_param_dict_order_is_irrelevant():
    a = RunSpec(topology="dps", workload="single_flow", rate=0.9,
                workload_params={"node": 0, "dst": 7}, config=_CFG, cycles=500)
    b = RunSpec(topology="dps", workload="single_flow", rate=0.9,
                workload_params={"dst": 7, "node": 0}, config=_CFG, cycles=500)
    assert a.content_hash == b.content_hash


@pytest.mark.parametrize(
    "override",
    [
        {"topology": "mecs"},
        {"workload": "uniform"},
        {"rate": 0.07},
        {"workload_params": {"pattern": "uniform_random"}},
        {"policy": "perflow"},
        {"config": SimulationConfig(frame_cycles=2000, seed=5)},
        {"mode": "window"},
        {"cycles": 801},
        {"warmup": 201},
    ],
)
def test_any_field_change_changes_the_hash(override):
    assert _spec(**override).content_hash != _spec().content_hash


def test_json_round_trip_preserves_spec_and_hash():
    spec = _spec(topology_params={})
    clone = RunSpec.from_json(spec.to_json())
    assert clone == spec
    assert clone.content_hash == spec.content_hash


def test_canonical_json_is_sorted_and_compact():
    text = _spec().canonical_json()
    assert ": " not in text and ", " not in text
    import json

    keys = list(json.loads(text))
    assert keys == sorted(keys)


def test_hash_is_stable_across_process_boundaries():
    """The cache key must not depend on interpreter state (e.g. hash
    randomisation): a fresh process must derive the same digest."""
    spec = _spec()
    code = (
        "from repro.network.config import SimulationConfig\n"
        "from repro.runtime.spec import RunSpec\n"
        "spec = RunSpec(topology='dps', workload='full_column', rate=0.05,\n"
        "               workload_params={'pattern': 'tornado'},\n"
        "               config=SimulationConfig(frame_cycles=2000, seed=4),\n"
        "               cycles=800, warmup=200)\n"
        "print(spec.content_hash)\n"
    )
    src_dir = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src_dir)
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True,
        env=env, check=True,
    )
    assert out.stdout.strip() == spec.content_hash


@pytest.mark.parametrize(
    "kwargs",
    [
        {"topology": "nope"},
        {"workload": "nope"},
        {"policy": "nope"},
        {"mode": "nope"},
        {"cycles": 0},
        {"warmup": -1},
        {"workload_params": {"pattern": [1, 2]}},
    ],
)
def test_invalid_specs_are_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        _spec(**kwargs)


def test_every_registered_workload_builds_flows(tmp_path):
    from repro.scenarios import ScenarioTrace, TraceFlow, write_trace

    trace_path = tmp_path / "tiny.jsonl"
    digest = write_trace(
        trace_path,
        ScenarioTrace(
            flows=(TraceFlow(node=0, port="terminal"),),
            emissions=((0, 0, 1, 1),),
            meta={},
        ),
    )
    required = {
        "phased": {"phases": '[{"cycles": 500, "rate": 0.1}]'},
        "replay": {"path": str(trace_path), "sha256": digest},
    }
    for name, entry in WORKLOAD_BUILDERS.items():
        params = {"duration": 1000} if name.endswith("_finite") else {}
        params.update(required.get(name, {}))
        rate = None if entry.rate == "forbidden" else 0.05
        spec = RunSpec(topology="mesh_x1", workload=name, rate=rate,
                       workload_params=params, config=_CFG, cycles=100)
        assert build_flows(spec), name


@pytest.mark.parametrize(
    "kwargs",
    [
        {"workload": "workload1", "rate": 0.05, "workload_params": {}},
        {"workload": "uniform", "rate": None, "workload_params": {}},
        {"workload": "workload1_finite", "rate": None, "workload_params": {}},
        {"workload": "full_column", "workload_params": {"pattren": "tornado"}},
        {"workload": "full_column", "workload_params": {"pattern": "tornadoo"}},
    ],
)
def test_workload_contract_violations_are_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        _spec(**kwargs)


def test_policy_registry_covers_the_public_policies():
    assert set(POLICIES) == {"pvc", "perflow", "noqos", "gsf"}


def test_run_result_json_round_trip():
    result = execute_spec(_spec(cycles=400, warmup=100))
    clone = RunResult.from_json(result.to_json())
    assert clone == result


def test_execute_spec_matches_direct_engine_run():
    from repro.network.engine import ColumnSimulator
    from repro.qos.pvc import PvcPolicy
    from repro.topologies.registry import get_topology
    from repro.traffic.patterns import tornado
    from repro.traffic.workloads import full_column_workload

    spec = _spec(cycles=600, warmup=150)
    result = execute_spec(spec)
    simulator = ColumnSimulator(
        get_topology("dps").build(_CFG),
        full_column_workload(0.05, pattern=tornado),
        PvcPolicy(),
        _CFG,
    )
    stats = simulator.run(600, warmup=150)
    assert result.mean_latency == stats.mean_latency
    assert result.delivered_flits == stats.delivered_flits
    assert result.preemption_events == stats.preemption_events
