"""Energy model: Figure 7's qualitative structure.

Encoded findings:

* meshes are least efficient on a 3-hop route (four router traversals);
* MECS has the most energy-hungry switch stage (long input lines) and
  undesirable per-hop cost, but good 3-hop efficiency (no intermediates);
* DPS combines mesh-like endpoint cost with very cheap intermediate
  hops (no crossbar traversal, no flow-state access);
* DPS saves roughly 17% over mesh x1 and 33% over mesh x4 on 3 hops;
* MECS and DPS are nearly identical on the 3-hop composite.
"""

import pytest

from repro.errors import ModelError
from repro.models.energy import HopType, RouterEnergyModel
from repro.topologies.registry import TOPOLOGY_NAMES, get_topology


@pytest.fixture(scope="module")
def model():
    return RouterEnergyModel()


@pytest.fixture(scope="module")
def geometries():
    return {name: get_topology(name).geometry() for name in TOPOLOGY_NAMES}


@pytest.fixture(scope="module")
def three_hop(model, geometries):
    return {
        name: model.route_energy(
            geometry, 3, single_hop_reach=(name == "mecs")
        ).total_pj
        for name, geometry in geometries.items()
    }


def test_meshes_least_efficient_on_three_hops(three_hop):
    for mesh in ("mesh_x1", "mesh_x2", "mesh_x4"):
        assert three_hop[mesh] > three_hop["mecs"]
        assert three_hop[mesh] > three_hop["dps"]


def test_dps_saves_about_17_percent_vs_mesh_x1(three_hop):
    savings = 1.0 - three_hop["dps"] / three_hop["mesh_x1"]
    assert 0.12 < savings < 0.25


def test_dps_saves_about_33_percent_vs_mesh_x4(three_hop):
    savings = 1.0 - three_hop["dps"] / three_hop["mesh_x4"]
    assert 0.28 < savings < 0.45


def test_mecs_and_dps_nearly_identical_on_three_hops(three_hop):
    ratio = three_hop["mecs"] / three_hop["dps"]
    assert 0.9 < ratio < 1.15


def test_mecs_switch_stage_is_most_energy_hungry(model, geometries):
    mecs_dest = model.hop_energy(geometries["mecs"], HopType.DESTINATION)
    for name, geometry in geometries.items():
        if name == "mecs":
            continue
        other = model.hop_energy(geometry, HopType.DESTINATION)
        assert mecs_dest.crossbar_pj > other.crossbar_pj, name


def test_dps_intermediate_hop_is_cheapest(model, geometries):
    dps_mid = model.hop_energy(geometries["dps"], HopType.INTERMEDIATE).total_pj
    for name, geometry in geometries.items():
        if name == "dps":
            continue
        assert dps_mid < model.hop_energy(geometry, HopType.INTERMEDIATE).total_pj


def test_dps_intermediate_has_no_flow_table_energy(model, geometries):
    energy = model.hop_energy(geometries["dps"], HopType.INTERMEDIATE)
    assert energy.flow_table_pj == 0.0


def test_mesh_per_hop_energy_grows_with_replication(model, geometries):
    totals = [
        model.hop_energy(geometries[name], HopType.SOURCE).total_pj
        for name in ("mesh_x1", "mesh_x2", "mesh_x4")
    ]
    assert totals[0] < totals[1] < totals[2]


def test_route_energy_rejects_zero_hops(model, geometries):
    with pytest.raises(ModelError):
        model.route_energy(geometries["dps"], 0)


def test_single_hop_reach_skips_intermediates(model, geometries):
    geometry = geometries["mecs"]
    near = model.route_energy(geometry, 1, single_hop_reach=True)
    far = model.route_energy(geometry, 7, single_hop_reach=True)
    assert near.total_pj == pytest.approx(far.total_pj)


def test_energy_breakdown_addition_and_scaling(model, geometries):
    hop = model.hop_energy(geometries["mesh_x1"], HopType.SOURCE)
    doubled = hop + hop
    assert doubled.total_pj == pytest.approx(2 * hop.total_pj)
    scaled = hop.scaled(3.0)
    assert scaled.buffers_pj == pytest.approx(3 * hop.buffers_pj)


def test_voltage_scaling_reduces_energy(model, geometries):
    from repro.models.technology import DEFAULT_TECHNOLOGY

    low_v = RouterEnergyModel(DEFAULT_TECHNOLOGY.scaled_to_voltage(0.6))
    base = model.hop_energy(geometries["mesh_x1"], HopType.SOURCE).total_pj
    scaled = low_v.hop_energy(geometries["mesh_x1"], HopType.SOURCE).total_pj
    assert scaled == pytest.approx(base * (0.6 / 0.9) ** 2)
