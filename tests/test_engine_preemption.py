"""Preemption mechanics: inversion resolution, throttles, replays."""


from repro.network.config import SimulationConfig
from repro.qos.perflow import PerFlowQueuedPolicy
from repro.traffic.workloads import workload1, workload2

from helpers import build_simulator


def _adversarial_config(**overrides):
    defaults = dict(frame_cycles=4000, seed=3, preemption_patience_cycles=8)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def test_workload1_triggers_preemptions_on_mesh():
    sim = build_simulator("mesh_x1", workload1(), config=_adversarial_config())
    stats = sim.run(12_000)
    assert stats.preemption_events > 0
    assert stats.wasted_tiles > 0
    assert stats.replays == stats.preemption_events


def test_preempted_packets_are_eventually_delivered():
    config = _adversarial_config()
    flows = workload1(packet_limit=60)
    sim = build_simulator("mesh_x1", flows, config=config)
    sim.run_until_drained(max_cycles=200_000)
    # Despite preemptions, every created packet is delivered exactly once.
    assert sim.stats.delivered_packets == sim.stats.created_packets


def test_disabling_preemption_removes_events():
    config = _adversarial_config(preemption_enabled=False)
    sim = build_simulator("mesh_x1", workload1(), config=config)
    stats = sim.run(12_000)
    assert stats.preemption_events == 0


def test_perflow_policy_never_preempts():
    sim = build_simulator(
        "mesh_x1", workload1(), policy=PerFlowQueuedPolicy(),
        config=_adversarial_config(),
    )
    stats = sim.run(12_000)
    assert stats.preemption_events == 0


def test_reserved_quota_throttles_preemptions():
    # A full-frame quota marks every packet non-preemptable.
    protected = _adversarial_config(reserved_quota_share=1.0)
    sim = build_simulator("mesh_x1", workload1(), config=protected)
    assert sim.run(12_000).preemption_events == 0


def test_small_quota_increases_preemptions():
    tiny = _adversarial_config(reserved_quota_share=0.0)
    provisioned = _adversarial_config()  # 1/64 share
    tiny_events = build_simulator(
        "mesh_x1", workload1(), config=tiny
    ).run(12_000).preemption_events
    base_events = build_simulator(
        "mesh_x1", workload1(), config=provisioned
    ).run(12_000).preemption_events
    assert tiny_events >= base_events


def test_patience_monotonically_damps_preemptions():
    impatient = _adversarial_config(preemption_patience_cycles=0)
    patient = _adversarial_config(preemption_patience_cycles=64)
    few = build_simulator("mesh_x1", workload1(), config=patient).run(
        12_000
    ).preemption_events
    many = build_simulator("mesh_x1", workload1(), config=impatient).run(
        12_000
    ).preemption_events
    assert few < many


def test_wasted_hops_counted_in_tile_units():
    # MECS: a victim that crossed d tiles wastes d mesh-equivalent hops.
    config = _adversarial_config()
    sim = build_simulator("mecs", workload2(), config=config)
    stats = sim.run(12_000)
    if stats.preemption_events:
        assert stats.wasted_tiles >= stats.preemption_events  # >= 1 tile each
    # hop fraction is a valid ratio.
    assert 0.0 <= stats.wasted_hop_fraction <= 1.0


def test_preemption_event_counts_each_occurrence():
    config = _adversarial_config()
    sim = build_simulator("mesh_x2", workload1(), config=config)
    stats = sim.run(12_000)
    # A packet may be preempted multiple times; events >= unique pids.
    assert stats.preemption_events >= len(stats.preempted_pids)


def test_workload2_mesh_x1_much_calmer_than_workload1():
    config = _adversarial_config()
    w1 = build_simulator("mesh_x1", workload1(), config=config).run(12_000)
    w2 = build_simulator("mesh_x1", workload2(), config=config).run(12_000)
    assert w2.preempted_packet_fraction < w1.preempted_packet_fraction


def test_replicated_mesh_worst_preemption_on_workload2():
    config = _adversarial_config()
    results = {}
    for name in ("mesh_x1", "mesh_x2", "mesh_x4", "mecs", "dps"):
        results[name] = build_simulator(name, workload2(), config=config).run(
            12_000
        ).preemption_events
    assert results["mesh_x2"] > results["mesh_x1"]
    assert results["mesh_x4"] > results["mesh_x1"]
    assert results["mesh_x2"] > results["dps"]
    assert results["mesh_x4"] > results["dps"]


def test_protected_packets_survive_pressure():
    # With everything protected, no packet is ever discarded, so
    # delivered == created after drain even under hotspot pressure.
    config = _adversarial_config(reserved_quota_share=1.0)
    flows = workload1(packet_limit=50)
    sim = build_simulator("dps", flows, config=config)
    sim.run_until_drained(max_cycles=200_000)
    assert sim.stats.preemption_events == 0
    assert sim.stats.delivered_packets == sim.stats.created_packets
