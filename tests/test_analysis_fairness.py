"""Max-min allocation and fairness reports (property-based)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.fairness import (
    deviation_from_expected,
    fairness_report,
    max_min_allocation,
)
from repro.errors import ConfigurationError

demands_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=16
)


def test_max_min_paper_example():
    # Workload 1's setting: under-share sources get their full demand,
    # the rest split the remainder equally.
    allocation = max_min_allocation(
        [0.05, 0.08, 0.11, 0.14, 0.16, 0.18, 0.19, 0.20], 1.0
    )
    assert allocation[0] == pytest.approx(0.05)
    assert allocation[1] == pytest.approx(0.08)
    assert allocation[2] == pytest.approx(0.11)
    # The four largest demands are capped at an equal level.
    top = allocation[4:]
    assert max(top) - min(top) < 1e-9
    assert sum(allocation) == pytest.approx(1.0)


def test_max_min_with_plentiful_capacity():
    assert max_min_allocation([0.1, 0.2], 1.0) == [
        pytest.approx(0.1),
        pytest.approx(0.2),
    ]


def test_max_min_zero_capacity():
    assert max_min_allocation([0.5, 0.5], 0.0) == [0.0, 0.0]


def test_max_min_rejects_negatives():
    with pytest.raises(ConfigurationError):
        max_min_allocation([-0.1], 1.0)
    with pytest.raises(ConfigurationError):
        max_min_allocation([0.1], -1.0)


@given(demands_strategy, st.floats(min_value=0.0, max_value=4.0, allow_nan=False))
def test_max_min_properties(demands, capacity):
    allocation = max_min_allocation(demands, capacity)
    # Never exceed demand, never negative.
    for got, want in zip(allocation, demands):
        assert -1e-12 <= got <= want + 1e-9
    # Never exceed capacity.
    assert sum(allocation) <= capacity + 1e-9
    # Work-conserving: either all demand met or all capacity used.
    assert (
        math.isclose(sum(allocation), min(sum(demands), capacity), abs_tol=1e-6)
    )


@given(demands_strategy)
def test_max_min_unsatisfied_sources_get_equal_shares(demands):
    capacity = sum(demands) * 0.5
    allocation = max_min_allocation(demands, capacity)
    unsatisfied = [
        alloc for alloc, demand in zip(allocation, demands) if alloc < demand - 1e-9
    ]
    if len(unsatisfied) >= 2:
        assert max(unsatisfied) - min(unsatisfied) < 1e-6


def test_fairness_report_table2_shape():
    report = fairness_report([98, 100, 102])
    assert report.mean_flits == pytest.approx(100.0)
    assert report.min_relative == pytest.approx(0.98)
    assert report.max_relative == pytest.approx(1.02)
    assert report.max_deviation == pytest.approx(0.02)


def test_fairness_report_rejects_empty():
    with pytest.raises(ConfigurationError):
        fairness_report([])


def test_deviation_from_expected():
    deviations, avg, lo, hi = deviation_from_expected([90.0, 110.0], [100.0, 100.0])
    assert deviations == [pytest.approx(-0.1), pytest.approx(0.1)]
    assert avg == pytest.approx(0.0)
    assert lo == pytest.approx(-0.1)
    assert hi == pytest.approx(0.1)


def test_deviation_handles_zero_expectation():
    deviations, avg, lo, hi = deviation_from_expected([5.0], [0.0])
    assert deviations == [0.0]


def test_deviation_rejects_length_mismatch():
    with pytest.raises(ConfigurationError):
        deviation_from_expected([1.0], [1.0, 2.0])
