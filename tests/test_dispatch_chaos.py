"""Chaos dispatch legs: network faults must not perturb the bytes."""

import json

from repro.campaign import CampaignSpec, StageSpec
from repro.resilience import Fault, FaultPlan, run_chaos
from repro.resilience.faults import BUILTIN_PLANS


def tiny_campaign():
    return CampaignSpec(
        name="tiny",
        description="dispatch chaos test campaign",
        stages=(
            StageSpec("area", "fig3"),
            StageSpec(
                "sat",
                "saturation",
                params={"cycles": 300, "topology_names": ["mesh_x1"]},
                depends_on=("area",),
            ),
        ),
    )


def test_builtin_dispatch_plan_covers_every_network_fault_kind():
    plan = BUILTIN_PLANS["dispatch"]
    kinds = {fault.kind for fault in plan.network_faults()}
    assert kinds == {
        "drop_request",
        "duplicate_result",
        "delay_response",
        "partition_worker",
        "worker_vanish",
    }
    assert plan.interrupt_after_shards is not None
    assert plan.without_interrupt().interrupt_after_shards is None


def test_chaos_dispatch_legs_converge_under_network_faults(tmp_path):
    plan = FaultPlan(
        name="net-mini",
        seed=5,
        faults=(
            Fault(kind="drop_request", at=2),
            Fault(kind="duplicate_result", at=1),
            Fault(kind="worker_vanish", at=0),
        ),
        interrupt_after_shards=1,
    )
    report = run_chaos(
        tiny_campaign(),
        chaos_dir=tmp_path / "chaos",
        plan=plan,
        jobs=2,
        retries=2,
        timeout=30.0,
        dispatch=True,
    )
    assert report.converged, report.summary()
    assert report.dispatch_ran
    assert report.dispatch_identical and report.dispatch_complete
    assert not report.dispatch_mismatched
    assert report.dispatch_digests == report.reference_digests
    assert report.dispatch_counters["completions"] >= 1
    assert report.fired.get("worker_vanish", 0) >= 1
    assert report.fired.get("duplicate_result", 0) >= 1
    on_disk = json.loads(
        (tmp_path / "chaos" / "chaos_report.json").read_text()
    )
    assert on_disk["converged"] is True
    assert on_disk["dispatch"]["identical"] is True
    assert "dispatch leg" in report.summary()
