"""Memory-controller endpoint: weighted fair service."""

import pytest

from repro.core.memctrl import MemoryController
from repro.errors import ConfigurationError


def test_requires_owners_and_positive_weights():
    with pytest.raises(ConfigurationError):
        MemoryController({})
    with pytest.raises(ConfigurationError):
        MemoryController({"a": 0.0})


def test_rejects_unknown_owner_submission():
    controller = MemoryController({"a": 1.0})
    with pytest.raises(ConfigurationError):
        controller.submit("b")


def test_idle_tick_serves_nothing():
    controller = MemoryController({"a": 1.0})
    assert controller.tick() is None


def test_equal_weights_equal_service():
    controller = MemoryController({"a": 1.0, "b": 1.0})
    for _ in range(200):
        controller.submit("a")
        controller.submit("b")
    served = controller.run(200)
    assert abs(served["a"] - served["b"]) <= 1


def test_weighted_service_is_proportional():
    controller = MemoryController({"light": 1.0, "heavy": 3.0})
    for _ in range(400):
        controller.submit("light")
        controller.submit("heavy")
    served = controller.run(400)
    assert 2.4 < served["heavy"] / served["light"] < 3.6


def test_idle_owner_yields_bandwidth():
    controller = MemoryController({"busy": 1.0, "idle": 1.0})
    for _ in range(100):
        controller.submit("busy")
    served = controller.run(100)
    assert served["busy"] == 100
    assert served["idle"] == 0


def test_service_cycles_occupy_the_controller():
    controller = MemoryController({"a": 1.0})
    controller.submit("a", service_cycles=10)
    controller.submit("a", service_cycles=10)
    served = controller.run(15)
    # Second request cannot start until cycle 11.
    assert served["a"] == 2
    assert controller.serviced["a"] == 2


def test_flush_frame_resets_history():
    controller = MemoryController({"a": 1.0, "b": 1.0})
    for _ in range(50):
        controller.submit("a")
    controller.run(50)
    controller.flush_frame()
    # After the flush, 'a' is not penalised for its past service.
    for _ in range(10):
        controller.submit("a")
        controller.submit("b")
    served = controller.run(20)
    assert abs(served["a"] - served["b"]) <= 1


def test_backlog_tracking():
    controller = MemoryController({"a": 1.0})
    controller.submit("a")
    controller.submit("a")
    assert controller.backlog("a") == 2
    controller.run(3)
    assert controller.backlog("a") == 0


def test_wait_cycles_accumulate():
    controller = MemoryController({"a": 1.0})
    controller.submit("a")
    controller.run(5)
    assert controller.total_wait_cycles >= 1
