"""The exception hierarchy: everything derives from ReproError."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "ConfigurationError",
        "SimulationError",
        "TopologyError",
        "TrafficError",
        "AllocationError",
        "ConvexityError",
        "IsolationError",
        "ModelError",
    ):
        assert issubclass(getattr(errors, name), errors.ReproError)


def test_topology_error_is_configuration_error():
    assert issubclass(errors.TopologyError, errors.ConfigurationError)


def test_traffic_error_is_configuration_error():
    assert issubclass(errors.TrafficError, errors.ConfigurationError)


def test_convexity_error_is_allocation_error():
    assert issubclass(errors.ConvexityError, errors.AllocationError)


def test_catching_base_catches_subclasses():
    with pytest.raises(errors.ReproError):
        raise errors.IsolationError("contained")
