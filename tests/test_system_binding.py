"""Shared-column binding details: sides, ports, and exhaustion."""

import pytest

from repro.core.chip import ChipConfig
from repro.core.hypervisor import VirtualMachine
from repro.core.system import TopologyAwareSystem
from repro.errors import AllocationError
from repro.network.packet import EAST_PORTS, WEST_PORTS


def _force_vm(system, name, nodes, weight=1.0):
    """Install a VM with an explicit domain (test backdoor)."""
    domain = system.hypervisor.allocator.allocate_explicit(
        name, nodes, weight=weight
    )
    vm = VirtualMachine(name=name, n_threads=len(nodes), weight=weight, domain=domain)
    system.hypervisor.vms[name] = vm
    return vm


def test_west_side_domain_enters_via_west_ports():
    system = TopologyAwareSystem()
    _force_vm(system, "w", {(0, 2), (1, 2)})
    binding = system.bind_shared_column()
    assert len(binding.flows) == 1  # one row touched
    assert binding.flows[0].node == 2
    assert binding.flows[0].port in WEST_PORTS


def test_east_side_domain_enters_via_east_ports():
    system = TopologyAwareSystem()
    _force_vm(system, "e", {(6, 5), (7, 5)})
    binding = system.bind_shared_column()
    assert binding.flows[0].port in EAST_PORTS


def test_straddling_domain_gets_both_sides():
    system = TopologyAwareSystem()
    # Convex domain spanning both sides of the column is impossible
    # (the column is not allocatable), but a VM may own nodes on both
    # sides only via two rows... so check a two-row west VM instead.
    _force_vm(system, "w", {(3, 0), (3, 1)})
    binding = system.bind_shared_column()
    assert {flow.node for flow in binding.flows} == {0, 1}


def test_port_pool_exhaustion_raises():
    system = TopologyAwareSystem()
    # Four single-node VMs on the west side of row 0: only three west
    # row-input ports exist per router.
    for index, x in enumerate((0, 1, 2, 3)):
        _force_vm(system, f"vm{index}", {(x, 0)})
    with pytest.raises(AllocationError):
        system.bind_shared_column()


def test_binding_owner_bookkeeping():
    system = TopologyAwareSystem()
    _force_vm(system, "a", {(0, 0)})
    _force_vm(system, "b", {(6, 0), (6, 1)})
    binding = system.bind_shared_column()
    assert len(binding.flows_of("a")) == 1
    assert len(binding.flows_of("b")) == 2
    assert len(binding.owners) == 3


def test_second_shared_column_binding():
    system = TopologyAwareSystem(ChipConfig(shared_columns=(2, 5)))
    _force_vm(system, "a", {(0, 0)})
    binding = system.bind_shared_column(column=5)
    # Node (0,0) is west of column 5.
    assert binding.flows[0].port in WEST_PORTS
