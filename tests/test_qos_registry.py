"""Policy registry: the single source of truth for QoS policy names.

Registration contract (round-trip, duplicate rejection, capability
cross-checking), the structured unknown-name error, and every view that
must *derive* from the registry rather than hardcode the name list —
runtime spec mappings, CLI choices, experiment policy orders — plus the
eager validation that rejects bad names at spec-build time instead of
inside a worker.
"""

import pytest

from repro.campaign.spec import CampaignSpec, StageSpec
from repro.errors import CampaignError, ConfigurationError, UnknownPolicyError
from repro.network.config import SimulationConfig
from repro.qos import (
    GsfPolicy,
    NoQosPolicy,
    PerFlowQueuedPolicy,
    PolicyCapabilities,
    PvcPolicy,
    QosPolicy,
    available_policies,
    create_policy,
    get_policy,
    policy_entries,
    register_policy,
)
from repro.qos import registry as registry_module
from repro.runtime.spec import POLICIES, POLICY_NAMES_BY_CLASS, RunSpec

BUILTINS = ("pvc", "perflow", "noqos", "gsf")


def test_builtin_policies_registered_in_order():
    assert available_policies() == BUILTINS


def test_get_policy_entry_round_trip():
    entry = get_policy("gsf")
    assert entry.name == "gsf"
    assert entry.factory is GsfPolicy
    assert entry.capabilities == GsfPolicy.capabilities
    assert entry.summary  # every built-in carries a one-liner


def test_create_policy_returns_fresh_instances():
    first, second = create_policy("pvc"), create_policy("pvc")
    assert isinstance(first, PvcPolicy)
    assert first is not second


def test_register_policy_round_trip_and_removal():
    class ProbePolicy(QosPolicy):
        capabilities = PolicyCapabilities(preemption=True)

    entry = register_policy(
        "probe_policy", ProbePolicy,
        capabilities=PolicyCapabilities(preemption=True),
        summary="test-only",
    )
    try:
        assert "probe_policy" in available_policies()
        assert get_policy("probe_policy") is entry
        assert isinstance(create_policy("probe_policy"), ProbePolicy)
        # The live runtime views pick the new policy up with no edits.
        assert "probe_policy" in POLICIES
        assert POLICIES["probe_policy"] is ProbePolicy
        assert POLICY_NAMES_BY_CLASS[ProbePolicy] == "probe_policy"
    finally:
        registry_module._REGISTRY.pop("probe_policy")
    assert "probe_policy" not in available_policies()


def test_duplicate_registration_rejected():
    with pytest.raises(ConfigurationError, match="already registered"):
        register_policy(
            "pvc", PvcPolicy, capabilities=PvcPolicy.capabilities
        )


def test_registration_validates_name_factory_and_capabilities():
    class ProbePolicy(QosPolicy):
        capabilities = PolicyCapabilities()

    with pytest.raises(ConfigurationError, match="identifier"):
        register_policy("not a name", ProbePolicy,
                        capabilities=PolicyCapabilities())
    with pytest.raises(ConfigurationError, match="QosPolicy subclass"):
        register_policy("probe", object,  # type: ignore[arg-type]
                        capabilities=PolicyCapabilities())
    with pytest.raises(ConfigurationError, match="contradict"):
        register_policy("probe", ProbePolicy,
                        capabilities=PolicyCapabilities(preemption=True))

    class Undeclared(QosPolicy):
        pass  # inherits capabilities, declares nothing itself

    with pytest.raises(ConfigurationError, match="declare"):
        register_policy("probe", Undeclared,
                        capabilities=PolicyCapabilities())


def test_unknown_policy_error_is_structured():
    with pytest.raises(UnknownPolicyError) as excinfo:
        get_policy("bogus")
    error = excinfo.value
    assert error.name == "bogus"
    assert error.available == BUILTINS
    for name in BUILTINS:
        assert name in str(error)
    # Dual inheritance: callers catching either hierarchy see it.
    assert isinstance(error, ConfigurationError)
    assert isinstance(error, KeyError)


def test_every_registered_policy_declares_capabilities():
    entries = policy_entries()
    assert [entry.name for entry in entries] == list(BUILTINS)
    for entry in entries:
        assert isinstance(entry.capabilities, PolicyCapabilities)
        # The entry repeats the class's own declaration, never invents one.
        assert entry.capabilities == entry.factory.__dict__["capabilities"]


def test_expected_builtin_capabilities():
    assert get_policy("pvc").capabilities == PolicyCapabilities(
        preemption=True, compliance_cached=True
    )
    assert get_policy("perflow").capabilities == PolicyCapabilities(
        overflow_vcs=True
    )
    assert get_policy("noqos").capabilities == PolicyCapabilities()
    assert get_policy("gsf").capabilities == PolicyCapabilities(
        throttles_injection=True
    )


def test_runtime_views_derive_from_registry():
    assert tuple(POLICIES) == available_policies()
    assert set(POLICIES.values()) == {
        PvcPolicy, PerFlowQueuedPolicy, NoQosPolicy, GsfPolicy
    }
    assert POLICY_NAMES_BY_CLASS[GsfPolicy] == "gsf"
    assert POLICY_NAMES_BY_CLASS[PvcPolicy] == "pvc"
    with pytest.raises(KeyError):
        POLICY_NAMES_BY_CLASS[QosPolicy]


def test_cli_choices_and_experiment_orders_derive_from_registry():
    from repro.analysis.experiments.burst_fairness import POLICY_ORDER
    from repro.analysis.experiments.pvc_vs_gsf import POLICY_PAIR
    from repro.cli import _policy_choices

    assert tuple(_policy_choices()) == available_policies()
    assert POLICY_ORDER == available_policies()
    assert set(POLICY_PAIR) <= set(available_policies())


def test_run_spec_rejects_unknown_policy_eagerly():
    with pytest.raises(UnknownPolicyError, match="registered policies"):
        RunSpec(topology="mecs", workload="uniform", rate=0.1,
                policy="bogus", config=SimulationConfig(seed=1))


@pytest.mark.parametrize("params", [
    {"policy": "bogus"},
    {"policies": ["pvc", "bogus"]},
])
def test_stage_spec_rejects_unknown_policy_eagerly(params):
    with pytest.raises(CampaignError, match="bogus"):
        StageSpec("s", "table2", params=params)


def test_stage_spec_checks_shard_overlays():
    with pytest.raises(CampaignError, match="registered policies"):
        StageSpec("s", "table2", params={"policy": "pvc"},
                  shards=({"policy": "nope"},))


def test_stage_spec_accepts_registered_policy_params():
    stage = StageSpec("s", "table2",
                      params={"policies": ["pvc", "gsf"]},
                      shards=({"policy": "noqos"},))
    campaign = CampaignSpec(name="c", description="d", stages=(stage,))
    assert campaign.stage("s").shard_params[0]["policy"] == "noqos"
