"""Cache integrity: sealed blobs, quarantine, fsck, the put_hook seam."""

import json

from repro.network.config import SimulationConfig
from repro.resilience import Fault, FaultInjector, FaultPlan
from repro.runtime.cache import ResultCache
from repro.runtime.spec import RunSpec, execute_spec

_CFG = SimulationConfig(frame_cycles=2000, seed=4)


def _spec(rate=0.05):
    return RunSpec(topology="mesh_x1", workload="uniform", rate=rate,
                   config=_CFG, cycles=400, warmup=100)


def _seed(cache, rate=0.05):
    spec = _spec(rate)
    cache.put(spec, execute_spec(spec))
    return spec


def test_undecodable_blob_is_quarantined_not_deleted(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _seed(cache)
    path = cache.path_for(spec.content_hash)
    path.write_bytes(b"not json at all")
    assert cache.get(spec) is None
    assert not path.exists()  # out of the lookup path...
    held = cache.quarantine_dir / path.name
    assert held.read_bytes() == b"not json at all"  # ...evidence intact
    assert cache.quarantined == 1
    assert cache.info().quarantined == 1
    # The slot is reusable: recompute, re-put, hit again.
    cache.put(spec, execute_spec(spec))
    assert cache.get(spec) is not None


def test_tampered_payload_fails_the_sha256_seal(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _seed(cache)
    path = cache.path_for(spec.content_hash)
    blob = json.loads(path.read_text())
    blob["payload_sha256"] = "0" * 64
    path.write_text(json.dumps(blob), encoding="utf-8")
    assert cache.get(spec) is None
    assert cache.quarantined == 1


def test_blob_under_the_wrong_hash_is_rejected(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _seed(cache)
    other = _spec(rate=0.07)
    wrong = cache.path_for(other.content_hash)
    wrong.parent.mkdir(parents=True, exist_ok=True)
    wrong.write_bytes(cache.path_for(spec.content_hash).read_bytes())
    assert cache.get(other) is None  # spec_hash mismatch, quarantined
    assert cache.get(spec) is not None  # the honest blob still serves


def test_fsck_quarantines_corruption_and_sweeps_orphans(tmp_path):
    cache = ResultCache(tmp_path)
    specs = [_seed(cache, rate) for rate in (0.03, 0.05, 0.07)]
    bad, torn = cache.path_for(specs[0].content_hash), cache.path_for(
        specs[1].content_hash
    )
    bad.write_bytes(b"\x00garbage")
    torn.write_bytes(torn.read_bytes()[:40])
    orphan = bad.parent / "leftover.tmp.999"
    orphan.write_text("killed mid-write", encoding="utf-8")

    report = cache.fsck()
    assert report.checked == 3
    assert report.ok == 1
    assert sorted(report.quarantined) == sorted([bad.name, torn.name])
    assert not report.healthy
    assert report.orphan_tmp_removed == 1
    assert not orphan.exists()
    assert report.to_json()["healthy"] is False

    # A second pass over the cleaned store is healthy.
    again = cache.fsck()
    assert again.healthy and again.checked == again.ok == 1


def test_put_hook_sees_every_blob_write(tmp_path):
    cache = ResultCache(tmp_path)
    written = []
    cache.put_hook = written.append
    spec = _seed(cache)
    assert written == [cache.path_for(spec.content_hash)]


def test_injected_cache_corruption_reads_as_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    plan = FaultPlan(faults=(Fault(kind="corrupt_cache", at=0),))
    cache.put_hook = FaultInjector(plan).on_cache_put
    spec = _spec()
    result = execute_spec(spec)
    cache.put(spec, result)  # the hook corrupts this write
    assert cache.get(spec) is None
    assert cache.quarantined == 1
    cache.put_hook = None
    cache.put(spec, result)
    assert cache.get(spec) == result
