"""CLI: argument handling and fast-path execution."""

import pytest

from repro.cli import COMMANDS, build_parser, main


def test_list_prints_commands(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_unknown_target_fails(capsys):
    assert main(["figure9"]) == 2
    assert "unknown target" in capsys.readouterr().err


def test_fig3_runs(capsys):
    assert main(["fig3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "[fig3:" in out


def test_fig7_runs(capsys):
    assert main(["fig7"]) == 0
    assert "Figure 7" in capsys.readouterr().out


def test_multiple_targets(capsys):
    assert main(["fig3", "fig7"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out and "Figure 7" in out


@pytest.mark.slow
def test_fig4_fast_with_chart(capsys):
    assert main(["fig4", "--fast", "--chart"]) == 0
    out = capsys.readouterr().out
    assert "uniform random" in out
    assert "mesh_x1" in out


def test_parser_defaults():
    args = build_parser().parse_args(["fig3"])
    assert args.seed == 1
    assert not args.fast
    assert not args.chart


def test_seed_flag():
    args = build_parser().parse_args(["fig3", "--seed", "9"])
    assert args.seed == 9
