"""Integration tests: the paper's headline claims, end to end.

Each test runs the actual experiment (scaled down) and asserts the
qualitative finding the paper reports.  These are the repository's
ground truth that the reproduction holds together.
"""

import pytest

from repro.analysis.experiments.fig4_latency import run_fig4
from repro.analysis.experiments.fig5_preemption import run_fig5
from repro.analysis.experiments.table2_fairness import run_table2
from repro.network.config import SimulationConfig

_CONFIG = SimulationConfig(frame_cycles=10_000, seed=1)


@pytest.fixture(scope="module")
def fig4():
    return run_fig4(
        rates=(0.02, 0.05, 0.11), cycles=3000, warmup=800, config=_CONFIG
    )


@pytest.fixture(scope="module")
def fig5():
    return run_fig5(cycles=15_000, config=_CONFIG)


@pytest.fixture(scope="module")
def table2():
    return run_table2(warmup=2000, window=10_000,
                      config=SimulationConfig(frame_cycles=50_000, seed=1))


# -- Figure 4 / Section 5.2 -----------------------------------------------


def test_mecs_and_dps_faster_than_meshes_at_low_load(fig4):
    for curves in (fig4.uniform, fig4.tornado):
        low = {name: points[0].mean_latency for name, points in curves.items()}
        for mesh in ("mesh_x1", "mesh_x2", "mesh_x4"):
            assert low["mecs"] < low[mesh]
            assert low["dps"] < low[mesh]


def test_mecs_and_dps_nearly_identical_on_uniform(fig4):
    low = {name: points[0].mean_latency for name, points in fig4.uniform.items()}
    assert abs(low["mecs"] - low["dps"]) / low["dps"] < 0.05


def test_longer_tornado_distance_favours_mecs(fig4):
    low = {name: points[0].mean_latency for name, points in fig4.tornado.items()}
    # MECS amortises its deeper pipeline over the longer flight (the
    # paper measures a 7% advantage over DPS on tornado).
    assert low["mecs"] < low["dps"]
    assert (low["dps"] - low["mecs"]) / low["dps"] < 0.20


def test_baseline_mesh_saturates_first(fig4):
    for curves in (fig4.uniform, fig4.tornado):
        high = {name: points[-1].mean_latency for name, points in curves.items()}
        assert high["mesh_x1"] > 3 * high["mecs"]
        assert high["mesh_x1"] > 3 * high["dps"]


def test_mesh_x4_cannot_load_balance_tornado(fig4):
    high = {name: points[-1].mean_latency for name, points in fig4.tornado.items()}
    assert high["mesh_x4"] > 1.5 * high["mecs"]


def test_bisection_ordering_on_uniform(fig4):
    high = {name: points[-1].mean_latency for name, points in fig4.uniform.items()}
    assert high["mesh_x1"] > high["mesh_x2"] > high["mesh_x4"]


# -- Table 2 ---------------------------------------------------------------


def test_all_topologies_provide_good_hotspot_fairness(table2):
    for row in table2:
        assert row.report.std_relative < 0.03, row.topology
        assert row.report.max_deviation < 0.06, row.topology


def test_hotspot_throughput_means_agree_across_topologies(table2):
    means = [row.report.mean_flits for row in table2]
    assert max(means) / min(means) < 1.05


def test_preemption_throttles_keep_table2_calm(table2):
    # "Preemption rate is very low, as preemption-throttling mechanisms
    # built into PVC are quite effective here."
    for row in table2:
        assert row.preemption_events < 100, row.topology


# -- Figure 5 ----------------------------------------------------------------


def _by(rows, workload):
    return {row.topology: row for row in rows if row.workload == workload}


def test_workload1_stresses_every_mesh(fig5):
    w1 = _by(fig5, "workload1")
    assert w1["mesh_x1"].preemption_events > 0
    assert w1["mesh_x2"].preemption_events > 0
    assert w1["mesh_x4"].preemption_events > 0


def test_replicated_meshes_keep_thrashing_on_workload2(fig5):
    w2 = _by(fig5, "workload2")
    # "The replicated mesh topologies continue to experience high
    # incidence of preemption" while x1/DPS drop significantly.
    assert w2["mesh_x2"].preempted_packet_fraction > 5 * max(
        w2["mesh_x1"].preempted_packet_fraction, 0.001
    )
    assert w2["mesh_x4"].preempted_packet_fraction > 5 * max(
        w2["dps"].preempted_packet_fraction, 0.001
    )


def test_mesh_x1_and_dps_calm_down_on_workload2(fig5):
    w1 = _by(fig5, "workload1")
    w2 = _by(fig5, "workload2")
    assert w2["mesh_x1"].preemption_events < w1["mesh_x1"].preemption_events
    assert w2["dps"].preemption_events <= w1["dps"].preemption_events


def test_mecs_is_resilient_on_both_workloads(fig5):
    for workload in ("workload1", "workload2"):
        row = _by(fig5, workload)["mecs"]
        assert row.preempted_packet_fraction < 0.12, workload


def test_mecs_hops_track_packets(fig5):
    # Rich buffering means MECS packets are rarely caught mid-transfer,
    # so discarded-hop fraction tracks discarded-packet fraction.
    row = _by(fig5, "workload1")["mecs"]
    if row.preempted_packet_fraction > 0.01:
        ratio = row.wasted_hop_fraction / row.preempted_packet_fraction
        assert 0.5 < ratio < 2.0
