"""GSF mechanics: frame budgets, source throttling, the head-to-head.

Policy-level tests drive :class:`GsfPolicy` directly through the
``QosPolicy`` contract calls the engines make (charge on creation,
release at placement, compliance reads); the engine-level test pins the
end-to-end property — a budget-exhausted source emits nothing further
until the next frame boundary — and the experiment test asserts the
qualitative PVC-vs-GSF ordering the extension study reports.
"""

import pytest

from repro.errors import ConfigurationError
from repro.network.config import SimulationConfig
from repro.network.engine import ColumnSimulator
from repro.network.packet import FlowSpec, Packet
from repro.network.trace import TraceKind, TraceRecorder
from repro.qos.gsf import GsfPolicy
from repro.qos.pvc import PROVISIONED_INJECTORS
from repro.topologies.registry import get_topology
from repro.traffic.patterns import hotspot

FRAME = 100


def _bound_policy(*, share=0.1, weights=(1.0,)):
    policy = GsfPolicy()
    flows = [FlowSpec(node=0, rate=0.1, weight=w) for w in weights]
    config = SimulationConfig(frame_cycles=FRAME, reserved_quota_share=share,
                             seed=1)
    policy.bind(8, flows, config)
    return policy


def _packet(policy, flow_id, size, now):
    """One create→release round-trip, as the engines perform it."""
    pid = policy._created
    policy.on_packet_created(flow_id, size, now)
    packet = Packet(pid=pid, flow_id=flow_id, src=0, dst=1, size=size,
                    created_at=now)
    release = policy.injection_release(packet, now)
    return packet, release


def test_budget_is_share_times_frame_times_weight():
    policy = _bound_policy(share=0.1, weights=(1.0, 2.0))
    assert policy.budget_flits(0) == pytest.approx(0.1 * FRAME)
    assert policy.budget_flits(1) == pytest.approx(0.1 * FRAME * 2.0)


def test_default_share_matches_pvc_provisioning():
    policy = GsfPolicy()
    config = SimulationConfig(frame_cycles=FRAME, seed=1)
    assert config.reserved_quota_share is None
    policy.bind(8, [FlowSpec(node=0)], config)
    assert policy.budget_flits(0) == pytest.approx(
        FRAME / PROVISIONED_INJECTORS
    )


def test_packets_charge_active_frame_until_budget_exhausted():
    policy = _bound_policy(share=0.1)  # 10 flits per frame
    # Two 4-flit packets fit frame 0 (8 <= 10); the third rolls over.
    for _ in range(2):
        packet, release = _packet(policy, 0, 4, now=5)
        assert packet.frame_tag == 0
        assert release == 5  # active-frame packets are not deferred
    assert policy.is_rate_compliant(None, packet, 5)
    packet, release = _packet(policy, 0, 4, now=5)
    assert packet.frame_tag == 1
    assert release == FRAME  # held until its window opens
    assert policy.deferral_count() == 1
    assert not policy.is_rate_compliant(None, packet, 5)
    # ... and compliance returns once the clock reaches the charged frame.
    assert policy.is_rate_compliant(None, packet, FRAME)


def test_throttled_source_charges_successive_frames():
    policy = _bound_policy(share=0.04)  # 4 flits: one packet per frame
    frames = [
        _packet(policy, 0, 4, now=0)[0].frame_tag for _ in range(4)
    ]
    assert frames == [0, 1, 2, 3]
    assert policy.charged_frame(0) == 3
    assert policy.deferral_count() == 3


def test_oversized_packet_admitted_alone_per_frame():
    policy = _bound_policy(share=0.02)  # 2-flit budget, 4-flit packets
    first, _ = _packet(policy, 0, 4, now=0)
    second, _ = _packet(policy, 0, 4, now=0)
    assert (first.frame_tag, second.frame_tag) == (0, 1)


def test_frame_rollover_reclaims_stale_budget():
    policy = _bound_policy(share=0.1)
    for _ in range(3):  # charge pointer runs ahead to frame 1
        _packet(policy, 0, 4, now=0)
    assert policy.charged_frame(0) == 1
    # Two frames of idleness: the next charge snaps to the active frame
    # (frame 5), reclaiming nothing from the stale window.
    packet, release = _packet(policy, 0, 4, now=5 * FRAME + 10)
    assert packet.frame_tag == 5
    assert release == 5 * FRAME + 10


def test_release_never_moves_a_packet_earlier():
    policy = _bound_policy(share=1.0)  # effectively unthrottled
    packet, release = _packet(policy, 0, 4, now=250)
    assert packet.frame_tag == 2
    assert release == 250  # window already open: ready_at unchanged
    assert policy.deferral_count() == 0


def test_set_weight_rescales_budget_and_validates():
    policy = _bound_policy(share=0.1)
    policy.set_weight(0, 3.0)
    assert policy.budget_flits(0) == pytest.approx(0.1 * FRAME * 3.0)
    with pytest.raises(ConfigurationError, match="positive"):
        policy.set_weight(0, 0.0)


def test_priority_is_the_charged_frame():
    policy = _bound_policy(share=0.04)
    early, _ = _packet(policy, 0, 4, now=0)
    late, _ = _packet(policy, 0, 4, now=0)
    assert policy.priority(None, early, 0) < policy.priority(None, late, 0)
    assert policy.priority_cache() is None


def test_engine_budget_exhausted_source_waits_for_frame_boundary():
    # One saturating injector, a 10-flit-per-frame reservation, fixed
    # 4-flit packets: exactly two packets fit each frame, and the third
    # waits at the source for the next window even though the fabric is
    # otherwise idle.  A packet *enters* the injection buffer whenever
    # there is room (the INJECT trace line); the throttle gates its
    # first hop grant — so the budget shows up in hop-0 WIN events.
    config = SimulationConfig(frame_cycles=200, reserved_quota_share=0.05,
                              seed=2)
    flows = [FlowSpec(node=4, rate=0.8, pattern=hotspot(0),
                      size_mix=((4, 1.0),))]
    policy = GsfPolicy()
    simulator = ColumnSimulator(
        get_topology("mecs").build(config), flows, policy, config
    )
    recorder = TraceRecorder(capacity=100_000)
    recorder.attach(simulator)
    frames = 10
    simulator.run(frames * 200)
    departures = [e.cycle for e in recorder.events
                  if e.kind is TraceKind.WIN and e.detail == "hop=0"]
    assert policy.deferral_count() > 0  # the throttle actually bit
    per_frame = [0] * frames
    for cycle in departures:
        per_frame[cycle // 200] += 1
    # Never more than the two packets the 10-flit budget admits; the
    # demand (rate 0.8) would depart far more often if unthrottled.
    assert all(count <= 2 for count in per_frame)
    assert sum(per_frame) <= 2 * frames
    assert max(per_frame[1:]) == 2  # budget actually used, not starved
    assert simulator.stats.preemption_events == 0  # GSF never preempts


def test_pvc_vs_gsf_qualitative_ordering():
    from repro.analysis.experiments.pvc_vs_gsf import run_pvc_vs_gsf

    cells = {
        (cell.regime, cell.policy): cell
        for cell in run_pvc_vs_gsf(
            warmup=500, window=3000,
            config=SimulationConfig(frame_cycles=500, seed=1),
        )
    }
    sat_pvc = cells[("saturation", "pvc")]
    sat_gsf = cells[("saturation", "gsf")]
    # Comparable fairness at saturation: both policies keep every flow
    # within a broad band of its fair share...
    assert sat_gsf.min_relative >= sat_pvc.min_relative - 0.15
    # ...but they pay differently: PVC preempts, GSF defers at source.
    assert sat_pvc.preemption_events > 0
    assert sat_pvc.throttle_deferrals == 0
    assert sat_gsf.preemption_events == 0
    assert sat_gsf.throttle_deferrals > 0

    head_pvc = cells[("headroom", "pvc")]
    head_gsf = cells[("headroom", "gsf")]
    # With spare capacity, PVC's scheduling-only QoS uses it; GSF's
    # admission-based reservations clamp throughput and stall packets
    # across frame boundaries — the paper's core argument.
    assert head_gsf.delivered_flits < head_pvc.delivered_flits
    assert head_gsf.mean_latency > 10 * head_pvc.mean_latency
    assert head_gsf.throttle_deferrals > 0
