"""QoS end-to-end properties: fairness with PVC, starvation without.

These are the paper's motivating claims:

* without QoS, hotspot traffic starves distant sources while nearby
  sources grab disproportionate bandwidth (Section 5.3, citing prior
  work);
* with PVC, all sources receive nearly equal shares regardless of
  distance (Table 2);
* weighted flows receive service proportional to their programmed
  rates (the OS rate-programming contract of Section 2.2).
"""

import statistics

import pytest

from repro.network.config import SimulationConfig
from repro.network.packet import FlowSpec
from repro.qos.base import NoQosPolicy
from repro.traffic.patterns import hotspot
from repro.traffic.workloads import hotspot_all_injectors

from helpers import build_simulator


def _hotspot_terminals(rate=0.5, weights=None):
    weights = weights or [1.0] * 8
    return [
        FlowSpec(node=n, rate=rate, weight=weights[n], pattern=hotspot(0))
        for n in range(8)
    ]


@pytest.mark.parametrize("name", ["mesh_x1", "mecs", "dps"])
def test_pvc_hotspot_fairness(name):
    config = SimulationConfig(frame_cycles=50_000, seed=5)
    sim = build_simulator(name, _hotspot_terminals(), config=config)
    stats = sim.run_window(2000, 8000)
    flits = stats.window_flits_per_flow
    mean = statistics.mean(flits)
    assert min(flits) > 0.90 * mean
    assert max(flits) < 1.10 * mean


def test_no_qos_starves_distant_sources():
    config = SimulationConfig(frame_cycles=50_000, seed=5)
    sim = build_simulator(
        "mesh_x1", _hotspot_terminals(), policy=NoQosPolicy(), config=config
    )
    stats = sim.run_window(2000, 8000)
    flits = stats.window_flits_per_flow
    near = flits[1]   # adjacent to the hotspot
    far = flits[7]    # other end of the column
    # Locally fair arbitration halves bandwidth at each merge point:
    # distant sources end up with a small fraction of nearby ones.
    assert far < 0.5 * near


def test_pvc_beats_no_qos_on_worst_case_share():
    config = SimulationConfig(frame_cycles=50_000, seed=5)
    with_qos = build_simulator(
        "mesh_x1", _hotspot_terminals(), config=config
    ).run_window(2000, 8000)
    without = build_simulator(
        "mesh_x1", _hotspot_terminals(), policy=NoQosPolicy(), config=config
    ).run_window(2000, 8000)
    assert min(with_qos.window_flits_per_flow) > min(without.window_flits_per_flow)


def test_weighted_flows_get_proportional_service():
    weights = [1.0, 1.0, 1.0, 1.0, 3.0, 3.0, 3.0, 3.0]
    config = SimulationConfig(frame_cycles=50_000, seed=5)
    sim = build_simulator(
        "mecs", _hotspot_terminals(rate=0.5, weights=weights), config=config
    )
    stats = sim.run_window(3000, 10_000)
    flits = stats.window_flits_per_flow
    light = statistics.mean(flits[:4])
    heavy = statistics.mean(flits[4:])
    assert 2.2 < heavy / light < 3.8


def test_table2_style_fairness_all_64_injectors():
    config = SimulationConfig(frame_cycles=50_000, seed=5)
    sim = build_simulator("dps", hotspot_all_injectors(0.05), config=config)
    stats = sim.run_window(3000, 10_000)
    flits = stats.window_flits_per_flow
    mean = statistics.mean(flits)
    std = statistics.pstdev(flits)
    assert std / mean < 0.05
    assert min(flits) / mean > 0.9
