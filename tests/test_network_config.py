"""SimulationConfig validation and paper defaults."""

import pytest

from repro.errors import ConfigurationError
from repro.network.config import COLUMN_NODES, PAPER_FRAME_CYCLES, SimulationConfig


def test_paper_defaults():
    config = SimulationConfig()
    assert config.frame_cycles == PAPER_FRAME_CYCLES == 50_000
    assert config.reserved_vc is True
    assert config.preemption_enabled is True


def test_column_size_is_eight():
    assert COLUMN_NODES == 8


def test_rejects_nonpositive_frame():
    with pytest.raises(ConfigurationError):
        SimulationConfig(frame_cycles=0)


def test_rejects_nonpositive_window():
    with pytest.raises(ConfigurationError):
        SimulationConfig(window_packets=0)


def test_rejects_negative_ack_overhead():
    with pytest.raises(ConfigurationError):
        SimulationConfig(ack_overhead_cycles=-1)


def test_rejects_out_of_range_quota_share():
    with pytest.raises(ConfigurationError):
        SimulationConfig(reserved_quota_share=1.5)
    SimulationConfig(reserved_quota_share=0.0)
    SimulationConfig(reserved_quota_share=1.0)


def test_rejects_negative_patience():
    with pytest.raises(ConfigurationError):
        SimulationConfig(preemption_patience_cycles=-1)


def test_config_is_frozen():
    config = SimulationConfig()
    with pytest.raises(Exception):
        config.seed = 9  # type: ignore[misc]
