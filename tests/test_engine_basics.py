"""Engine fundamentals: delivery, conservation, determinism, timing."""

import pytest

from repro.errors import ConfigurationError
from repro.network.config import SimulationConfig
from repro.network.engine import ColumnSimulator
from repro.network.packet import FlowSpec
from repro.qos.pvc import PvcPolicy
from repro.topologies.registry import TOPOLOGY_NAMES, get_topology
from repro.traffic.workloads import uniform_workload

from helpers import build_simulator


def _single_flow(src=2, dst=5, rate=0.02, size=(1, 1.0), limit=None):
    return [
        FlowSpec(
            node=src,
            rate=rate,
            pattern=lambda s, rng: dst,
            size_mix=(size,),
            packet_limit=limit,
        )
    ]


@pytest.mark.parametrize("name", TOPOLOGY_NAMES)
def test_packets_are_delivered(name):
    sim = build_simulator(name)
    stats = sim.run(3000)
    assert stats.delivered_packets > 0
    assert stats.delivered_flits >= stats.delivered_packets


@pytest.mark.parametrize("name", TOPOLOGY_NAMES)
def test_flit_conservation_after_drain(name):
    flows = _single_flow(limit=40)
    sim = build_simulator(name, flows)
    sim.run_until_drained(max_cycles=50_000)
    assert sim.stats.delivered_flits == sim.stats.created_flits
    assert sim.stats.delivered_packets == sim.stats.created_packets == 40


@pytest.mark.parametrize("name", TOPOLOGY_NAMES)
def test_determinism_same_seed(name):
    first = build_simulator(name).run(2500).summary()
    second = build_simulator(name).run(2500).summary()
    assert first == second


def test_different_seed_changes_outcome():
    config_a = SimulationConfig(frame_cycles=2000, seed=1)
    config_b = SimulationConfig(frame_cycles=2000, seed=2)
    a = build_simulator("dps", config=config_a).run(2500).summary()
    b = build_simulator("dps", config=config_b).run(2500).summary()
    assert a != b


def test_requires_at_least_one_flow():
    topology = get_topology("mesh_x1")
    with pytest.raises(ConfigurationError):
        ColumnSimulator(topology.build(), [], PvcPolicy())


def test_rejects_duplicate_injector_mapping():
    topology = get_topology("mesh_x1")
    flows = [FlowSpec(node=0), FlowSpec(node=0)]  # both on terminal@0
    with pytest.raises(ConfigurationError):
        ColumnSimulator(topology.build(), flows, PvcPolicy())


def test_zero_load_single_packet_latency_mesh():
    # One 1-flit packet across one hop in an idle mesh: injection
    # VA(1), then 3 cycles per hop (XT + wire + next VA), then 1 cycle
    # of ejection = 5.  Assert the modelled constant so timing changes
    # are caught deliberately.
    flows = _single_flow(src=2, dst=3, rate=0.0, limit=0)
    sim = build_simulator("mesh_x1", flows)
    # Inject one packet manually through the private generator.
    injector = sim._injectors[0]
    injector.spec.packet_limit = None
    sim._create_packet(injector, now=sim.cycle)
    injector.spec.packet_limit = 0
    sim.run_until_drained(max_cycles=1000)
    assert sim.stats.delivered_packets == 1
    assert sim.stats.latency.mean == pytest.approx(5.0)


def test_zero_load_latency_orders_match_paper():
    # At (near) zero load: MECS/DPS beat every mesh variant; on a long
    # route MECS's single hop beats DPS's chain of cheap hops.
    latencies = {}
    for name in ("mesh_x1", "mecs", "dps"):
        flows = _single_flow(src=0, dst=7, rate=0.005)
        sim = build_simulator(name, flows)
        stats = sim.run(4000)
        latencies[name] = stats.mean_latency
    assert latencies["mecs"] < latencies["dps"] < latencies["mesh_x1"]


def test_mecs_wire_delay_scales_with_distance():
    near = build_simulator("mecs", _single_flow(src=0, dst=1, rate=0.005))
    far = build_simulator("mecs", _single_flow(src=0, dst=7, rate=0.005))
    near_latency = near.run(4000).mean_latency
    far_latency = far.run(4000).mean_latency
    assert far_latency == pytest.approx(near_latency + 6, abs=1.5)


def test_run_accumulates_across_calls():
    sim = build_simulator("mesh_x1")
    sim.run(1000)
    first = sim.stats.delivered_packets
    sim.run(1000)
    assert sim.cycle == 2000
    assert sim.stats.delivered_packets > first


def test_latency_includes_source_queueing():
    # Saturated single flow: latency should grow far beyond the
    # unloaded pipeline because packets wait at the source.
    flows = _single_flow(src=0, dst=7, rate=0.9)
    sim = build_simulator("mesh_x1", flows)
    stats = sim.run(4000)
    assert stats.mean_latency > 50


def test_injector_state_diagnostics():
    sim = build_simulator("mesh_x1", _single_flow(rate=0.5))
    sim.run(200)
    state = sim.injector_state(0)
    assert state["created"] > 0
    assert set(state) == {"pending", "replay", "outstanding", "created"}


def test_ejection_port_enforces_one_flit_per_cycle():
    # All eight nodes hammer node 0: delivered flits in a window can
    # never exceed the window length (1 flit/cycle terminal port).
    flows = [
        FlowSpec(node=n, rate=0.5, pattern=lambda s, r: 0) for n in range(8)
    ]
    sim = build_simulator("mecs", flows)
    stats = sim.run_window(1000, 2000)
    assert sum(stats.window_flits_per_flow) <= 2000


def test_uniform_workload_spreads_destinations():
    sim = build_simulator("mecs", uniform_workload(0.1))
    stats = sim.run(3000)
    delivered = stats.delivered_packets_per_flow
    assert all(count > 0 for count in delivered)
