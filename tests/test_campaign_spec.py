"""Campaign/stage spec validation, ordering, and hashing."""

import pytest

from repro.campaign import CAMPAIGNS, CampaignSpec, StageSpec, get_campaign
from repro.campaign.spec import stage_hash
from repro.campaign.stages import STAGE_ADAPTERS, STAGE_KINDS, get_adapter
from repro.errors import CampaignError


def _campaign(stages, **kwargs):
    return CampaignSpec(name="t", description="test", stages=tuple(stages), **kwargs)


def test_stage_defaults_are_single_shard():
    stage = StageSpec("fig3", "fig3")
    assert stage.shard_count == 1
    assert stage.shard_params == ({},)


def test_shard_params_merge_overlays_over_base():
    stage = StageSpec(
        "s",
        "saturation",
        params={"cycles": 500, "topology_names": ["mesh_x1", "mecs"]},
        shards=({"topology_names": ["mesh_x1"]}, {"topology_names": ["mecs"]}),
    )
    assert stage.shard_count == 2
    first, second = stage.shard_params
    assert first == {"cycles": 500, "topology_names": ["mesh_x1"]}
    assert second == {"cycles": 500, "topology_names": ["mecs"]}


def test_non_json_params_rejected():
    with pytest.raises(CampaignError, match="not JSON-serialisable"):
        StageSpec("s", "fig3", params={"model": object()})


def test_duplicate_stage_names_rejected():
    with pytest.raises(CampaignError, match="duplicate stage names"):
        _campaign([StageSpec("a", "fig3"), StageSpec("a", "fig7")])


def test_unknown_dependency_rejected():
    with pytest.raises(CampaignError, match="unknown stages"):
        _campaign([StageSpec("a", "fig3", depends_on=("ghost",))])


def test_self_dependency_rejected():
    with pytest.raises(CampaignError, match="depends on itself"):
        _campaign([StageSpec("a", "fig3", depends_on=("a",))])


def test_dependency_cycle_rejected():
    with pytest.raises(CampaignError, match="dependency cycle"):
        _campaign(
            [
                StageSpec("a", "fig3", depends_on=("b",)),
                StageSpec("b", "fig7", depends_on=("a",)),
            ]
        )


def test_execution_order_respects_dependencies():
    campaign = _campaign(
        [
            StageSpec("late", "fig3", depends_on=("early",)),
            StageSpec("early", "fig7"),
        ]
    )
    names = [stage.name for stage in campaign.execution_order()]
    assert names == ["early", "late"]


def test_negative_drift_tolerance_rejected():
    with pytest.raises(CampaignError, match="drift_tolerance"):
        _campaign([StageSpec("a", "fig3")], drift_tolerance=-0.1)


def test_stage_hash_is_stable_and_param_sensitive():
    campaign = _campaign([StageSpec("a", "saturation", params={"cycles": 500})])
    changed = _campaign([StageSpec("a", "saturation", params={"cycles": 501})])
    kwargs = dict(adapter_version=1, engine_version="1.5.0")
    base = stage_hash(campaign, campaign.stage("a"), **kwargs)
    assert base == stage_hash(campaign, campaign.stage("a"), **kwargs)
    assert base != stage_hash(changed, changed.stage("a"), **kwargs)


def test_stage_hash_tracks_seed_engine_and_adapter_version():
    stage = StageSpec("a", "saturation")
    campaign = _campaign([stage])
    reseeded = _campaign([stage], seed=2)
    base = stage_hash(campaign, stage, adapter_version=1, engine_version="1.5.0")
    assert base != stage_hash(
        reseeded, reseeded.stage("a"), adapter_version=1, engine_version="1.5.0"
    )
    assert base != stage_hash(
        campaign, stage, adapter_version=2, engine_version="1.5.0"
    )
    assert base != stage_hash(
        campaign, stage, adapter_version=1, engine_version="9.9.9"
    )


def test_adapter_registry_covers_every_builtin_stage():
    for campaign in CAMPAIGNS.values():
        for stage in campaign.stages:
            adapter = get_adapter(stage.kind)
            assert adapter.kind == stage.kind


def test_unknown_adapter_kind_raises():
    with pytest.raises(CampaignError, match="unknown stage kind"):
        get_adapter("nope")


def test_builtin_campaigns_share_the_stage_graph():
    paper = get_campaign("paper")
    smoke = get_campaign("smoke")
    assert [s.name for s in paper.stages] == [s.name for s in smoke.stages]
    assert [s.kind for s in paper.stages] == [s.kind for s in smoke.stages]
    assert [s.depends_on for s in paper.stages] == [
        s.depends_on for s in smoke.stages
    ]


def test_stage_kinds_sorted_registry():
    assert list(STAGE_KINDS) == sorted(STAGE_ADAPTERS)
