"""Ablation modules: structure and directional sanity at small scale."""

from repro.analysis.ablations import (
    run_fbfly_study,
    run_frame_ablation,
    run_patience_ablation,
    run_quota_ablation,
    run_replica_ablation,
    run_reserved_vc_ablation,
    run_window_ablation,
)
from repro.network.config import SimulationConfig

_FAST = SimulationConfig(frame_cycles=4000, seed=2)


def test_quota_ablation_endpoints():
    points = run_quota_ablation(
        shares=(0.0, 1.0), cycles=8000, config=_FAST
    )
    assert points[0].share == 0.0
    assert points[0].quota_flits == 0.0
    assert points[1].quota_flits == 4000.0
    assert points[1].preemption_events == 0
    assert points[0].preemption_events >= points[1].preemption_events


def test_reserved_vc_ablation_covers_grid():
    points = run_reserved_vc_ablation(cycles=4500, config=_FAST)
    cells = {(point.workload, point.reserved) for point in points}
    assert len(cells) == 4


def test_patience_ablation_monotone_small():
    points = run_patience_ablation(
        patience_values=(0, 32), cycles=8000, config=_FAST
    )
    assert points[0].preemption_events >= points[1].preemption_events


def test_frame_ablation_reports_both_axes():
    points = run_frame_ablation(frames=(2000, 10_000), window=6000, config=_FAST)
    assert len(points) == 2
    for point in points:
        assert point.fairness_std >= 0.0
        assert point.adversarial_preemptions >= 0


def test_window_ablation_monotone():
    points = run_window_ablation(windows=(1, 16), cycles=3000, config=_FAST)
    assert points[0].delivered_flits < points[1].delivered_flits


def test_replica_ablation_grid():
    points = run_replica_ablation(replications=(2,), cycles=6000, config=_FAST)
    assert {point.policy for point in points} == {"packet_rr", "per_flow"}


def test_fbfly_study_rows():
    rows = run_fbfly_study(cycles=1500, config=_FAST)
    assert [row.topology for row in rows] == ["mecs", "dps", "fbfly"]
    for row in rows:
        assert row.uniform_latency > 0
        assert row.router_area_mm2 > 0
