"""Retransmission window and ACK-network behaviour."""

from repro.network.config import SimulationConfig
from repro.network.packet import FlowSpec

from helpers import build_simulator


def _flow(rate=0.5, dst=7, limit=None):
    return [
        FlowSpec(
            node=0,
            rate=rate,
            pattern=lambda s, rng: dst,
            size_mix=((1, 1.0),),
            packet_limit=limit,
        )
    ]


def test_window_bounds_outstanding_packets():
    config = SimulationConfig(frame_cycles=5000, window_packets=4, seed=1)
    sim = build_simulator("mesh_x1", _flow(rate=0.9), config=config)
    max_seen = 0
    for _ in range(60):
        sim.run(10)
        max_seen = max(max_seen, sim.injector_state(0)["outstanding"])
    assert max_seen <= 4


def test_acks_release_window_slots():
    config = SimulationConfig(frame_cycles=5000, window_packets=2, seed=1)
    sim = build_simulator("mesh_x1", _flow(rate=0.3, limit=20), config=config)
    sim.run_until_drained(max_cycles=20_000)
    # All slots returned once everything is delivered and ACKed.
    assert sim.injector_state(0)["outstanding"] == 0
    assert sim.stats.delivered_packets == 20


def test_tiny_window_throttles_throughput():
    config_small = SimulationConfig(frame_cycles=5000, window_packets=1, seed=1)
    config_large = SimulationConfig(frame_cycles=5000, window_packets=32, seed=1)
    small = build_simulator("mesh_x1", _flow(rate=0.9), config=config_small)
    large = build_simulator("mesh_x1", _flow(rate=0.9), config=config_large)
    small_flits = small.run(4000).delivered_flits
    large_flits = large.run(4000).delivered_flits
    # RTT (ack distance 7 + overhead) per packet caps the 1-window case.
    assert small_flits < large_flits


def test_ack_overhead_delays_window_reuse():
    fast = SimulationConfig(frame_cycles=5000, window_packets=1,
                            ack_overhead_cycles=0, seed=1)
    slow = SimulationConfig(frame_cycles=5000, window_packets=1,
                            ack_overhead_cycles=40, seed=1)
    fast_flits = build_simulator("mesh_x1", _flow(rate=0.9), config=fast).run(
        4000
    ).delivered_flits
    slow_flits = build_simulator("mesh_x1", _flow(rate=0.9), config=slow).run(
        4000
    ).delivered_flits
    assert slow_flits < fast_flits


def test_replays_do_not_double_count_window():
    # Adversarial load with preemptions: outstanding never exceeds the
    # window even though packets are re-injected.
    from repro.traffic.workloads import workload1

    config = SimulationConfig(
        frame_cycles=4000, window_packets=8, seed=3, preemption_patience_cycles=4
    )
    sim = build_simulator("mesh_x2", workload1(), config=config)
    for _ in range(40):
        sim.run(250)
        for flow_id in range(8):
            assert sim.injector_state(flow_id)["outstanding"] <= 8
    assert sim.stats.preemption_events > 0  # the scenario actually bites
