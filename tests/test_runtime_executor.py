"""Executors and runner: serial/parallel equivalence, cache counters."""

import pytest

from repro.network.config import SimulationConfig
from repro.runtime.cache import ResultCache
from repro.runtime.executor import ParallelExecutor, SerialExecutor
from repro.runtime.runner import RunManifest, run_batch, run_grid
from repro.runtime.spec import RunSpec

_CFG = SimulationConfig(frame_cycles=2000, seed=4)
_RATES = (0.02, 0.05)
_TOPOLOGIES = ("mesh_x1", "dps")


def _fig4_style_specs() -> list[RunSpec]:
    """A miniature Figure-4 sweep: topologies x rates, full column."""
    return [
        RunSpec(
            topology=name,
            workload="full_column",
            rate=rate,
            workload_params={"pattern": "uniform_random"},
            config=_CFG,
            cycles=600,
            warmup=150,
        )
        for name in _TOPOLOGIES
        for rate in _RATES
    ]


def test_parallel_equals_serial_on_fig4_style_sweep():
    specs = _fig4_style_specs()
    serial = SerialExecutor().map(specs)
    parallel = ParallelExecutor(jobs=4).map(specs)
    assert serial == parallel  # exact equality, field for field


def test_second_cached_invocation_simulates_nothing(tmp_path):
    specs = _fig4_style_specs()
    cache = ResultCache(tmp_path)
    first = run_batch(specs, executor=ParallelExecutor(jobs=4), cache=cache)
    assert first.manifest.simulated == len(specs)
    assert first.manifest.cache_hits == 0

    again = run_batch(specs, executor=ParallelExecutor(jobs=4), cache=cache)
    assert again.manifest.simulated == 0
    assert again.manifest.cache_hits == len(specs)
    assert list(again.results) == list(first.results)

    # The cache is executor-agnostic: a serial run hits it too.
    serial = run_batch(specs, executor=SerialExecutor(), cache=cache)
    assert serial.manifest.simulated == 0
    assert list(serial.results) == list(first.results)


def test_duplicate_specs_collapse_to_one_simulation():
    spec = _fig4_style_specs()[0]
    batch = run_batch([spec, spec, spec])
    assert batch.manifest.simulated == 1
    assert len(batch.results) == 3
    assert batch.results[0] == batch.results[1] == batch.results[2]


def test_progress_callback_sees_every_unique_spec(tmp_path):
    specs = _fig4_style_specs()
    cache = ResultCache(tmp_path)
    seen = []
    run_batch(specs, cache=cache,
              progress=lambda done, total, spec, cached: seen.append(
                  (done, total, cached)))
    assert [s[0] for s in seen] == [1, 2, 3, 4]
    assert all(total == 4 for _, total, _ in seen)
    assert not any(cached for _, _, cached in seen)

    seen.clear()
    run_batch(specs, cache=cache,
              progress=lambda done, total, spec, cached: seen.append(cached))
    assert seen == [True, True, True, True]


def test_modes_survive_the_parallel_path():
    specs = [
        RunSpec(topology="mesh_x1", workload="workload1_finite",
                workload_params={"duration": 1200}, config=_CFG,
                mode="drain", cycles=80_000),
        RunSpec(topology="dps", workload="hotspot64", rate=0.05,
                config=_CFG, mode="window", cycles=1500, warmup=400),
    ]
    serial = SerialExecutor().map(specs)
    parallel = ParallelExecutor(jobs=2).map(specs)
    assert serial == parallel
    assert serial[0].completion_cycle > 0
    assert len(serial[1].window_flits_per_flow) == 64


def test_parallel_jobs_default_and_validation():
    import os

    assert ParallelExecutor().jobs == (os.cpu_count() or 1)
    assert ParallelExecutor(jobs=3).jobs == 3
    with pytest.raises(ValueError):
        ParallelExecutor(jobs=0)


def _forbid_pool(monkeypatch):
    """Make any worker-pool spawn fail loudly."""

    def boom(*args, **kwargs):  # pragma: no cover - failure reporter
        raise AssertionError("SupervisedWorkerPool must not be spawned")

    import repro.runtime.executor as executor_module

    monkeypatch.setattr(executor_module, "SupervisedWorkerPool", boom)


def test_jobs_1_degrades_to_in_process_serial(monkeypatch):
    # Pool overhead at jobs=1 was a measured 0.787x slowdown
    # (BENCH_runtime.json); the executor must not pay it.
    _forbid_pool(monkeypatch)
    specs = _fig4_style_specs()
    results = ParallelExecutor(jobs=1).map(specs)
    assert results == SerialExecutor().map(specs)


def test_single_pending_spec_degrades_to_in_process_serial(monkeypatch, tmp_path):
    # jobs >= pending batch size == 1: a pool for one spec is pure
    # overhead, so the un-cached remainder runs in-process too.
    cache = ResultCache(tmp_path)
    specs = _fig4_style_specs()
    ParallelExecutor(jobs=1).run(specs[:-1], cache=cache)
    _forbid_pool(monkeypatch)
    outcome = ParallelExecutor(jobs=4).run(specs, cache=cache)
    assert outcome.cache_hits == len(specs) - 1
    assert outcome.simulated == 1
    assert outcome.results == SerialExecutor().map(specs)


def test_run_grid_shapes_and_manifest(tmp_path):
    cache = ResultCache(tmp_path)
    grid = run_grid(
        list(_TOPOLOGIES), list(_RATES), workload="uniform",
        cycles=500, warmup=100, config=_CFG, cache=cache,
    )
    assert set(grid.curves) == set(_TOPOLOGIES)
    assert all(len(curve) == len(_RATES) for curve in grid.curves.values())
    assert grid.manifest.total == len(_TOPOLOGIES) * len(_RATES)
    assert grid.manifest.cache_dir == str(tmp_path)
    assert grid.rates == _RATES

    again = run_grid(
        list(_TOPOLOGIES), list(_RATES), workload="uniform",
        cycles=500, warmup=100, config=_CFG, cache=cache,
    )
    assert again.manifest.simulated == 0
    assert again.curves == grid.curves


def test_manifest_merge_and_summary():
    a = RunManifest(total=4, simulated=4, cache_hits=0, elapsed_seconds=1.0,
                    executor="serial", cache_dir=None, started_at=10.0,
                    spec_hashes=("a",))
    b = RunManifest(total=4, simulated=0, cache_hits=4, elapsed_seconds=0.5,
                    executor="serial", cache_dir=None, started_at=12.0,
                    spec_hashes=("b",))
    merged = RunManifest.merge([a, b])
    assert merged.total == 8
    assert merged.simulated == 4
    assert merged.cache_hits == 4
    assert merged.spec_hashes == ("a", "b")
    assert "4 simulated" in merged.summary() and "4 cached" in merged.summary()
    assert merged.to_json()["total"] == 8


def test_sweep_named_workload_matches_legacy_callable_path():
    from repro.analysis.sweep import latency_throughput_sweep
    from repro.traffic.workloads import uniform_workload

    legacy = latency_throughput_sweep(
        "dps", uniform_workload, list(_RATES),
        cycles=600, warmup=150, config=_CFG,
    )
    named = latency_throughput_sweep(
        "dps", "uniform", list(_RATES),
        cycles=600, warmup=150, config=_CFG,
        executor=ParallelExecutor(jobs=2),
    )
    assert legacy == named


def test_experiments_accept_executor_and_cache(tmp_path):
    from repro.analysis.experiments.saturation import run_saturation

    cache = ResultCache(tmp_path)
    points = run_saturation(cycles=500, topology_names=("mesh_x1",),
                            config=_CFG, cache=cache)
    cached = run_saturation(cycles=500, topology_names=("mesh_x1",),
                            config=_CFG, cache=cache,
                            executor=ParallelExecutor(jobs=2))
    assert points == cached
    assert cache.info().entries == 2  # uniform + tornado
