"""Campaign-level resilience: shard retries, torn manifests, chaos runs."""

import json

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    StageSpec,
    run_campaign,
    stage_digests,
)
from repro.errors import CampaignError
from repro.resilience import Fault, FaultInjector, FaultPlan, run_chaos


def two_stage_campaign():
    return CampaignSpec(
        name="tiny",
        description="resilience test campaign",
        stages=(
            StageSpec("area", "fig3"),
            StageSpec(
                "sat",
                "saturation",
                params={"cycles": 300, "topology_names": ["mesh_x1"]},
                depends_on=("area",),
            ),
        ),
    )


def braided_campaign():
    """A failing stage, its dependent, and an independent bystander."""
    return CampaignSpec(
        name="braided",
        description="failure-isolation test campaign",
        stages=(
            StageSpec(
                "boom",
                "saturation",
                params={"cycles": 300, "topology_names": ["mesh_x1"]},
            ),
            StageSpec("after", "fig3", depends_on=("boom",)),
            StageSpec("solo", "fig3"),
        ),
    )


def test_shard_retry_recovers_a_transient_adapter_fault(tmp_path):
    injector = FaultInjector(
        FaultPlan(name="t", faults=(Fault(kind="adapter_error", at=0),))
    )
    result = run_campaign(
        two_stage_campaign(),
        campaign_dir=tmp_path / "c",
        shard_retries=1,
        faults=injector,
    )
    assert result.complete
    assert result.manifest["stages"]["area"]["retries"] == 1
    resilience = result.manifest["telemetry"]["resilience"]
    assert resilience["stage_retries"] == 1
    assert resilience["faults_fired"] == {"adapter_error": 1}


def test_exhausted_fault_fails_stage_and_resume_reruns_only_it(tmp_path):
    campaign = braided_campaign()
    injector = FaultInjector(
        FaultPlan(faults=(Fault(kind="adapter_error", at=0, attempts=3),))
    )
    events = []
    first = run_campaign(
        campaign,
        campaign_dir=tmp_path / "c",
        shard_retries=1,
        faults=injector,
        progress=lambda stage, done, total, event: events.append(
            (stage, event)
        ),
    )
    assert first.failed_stages == ["boom"]
    assert first.executed_stages == ["solo"]
    statuses = {
        name: entry["status"]
        for name, entry in first.manifest["stages"].items()
    }
    assert statuses == {"boom": "failed", "after": "blocked", "solo": "complete"}
    assert "InjectedFault" in first.manifest["stages"]["boom"]["error"]
    assert ("boom", "retry") in events and ("boom", "failed") in events

    # Resume with the fault gone: only the failed stage and its blocked
    # dependent execute; the bystander is served from its artifact.
    second = run_campaign(
        campaign, campaign_dir=tmp_path / "c", require_manifest=True
    )
    assert second.complete
    assert second.executed_stages == ["boom", "after"]
    assert second.reused_stages == ["solo"]


def test_torn_manifest_falls_back_to_the_backup(tmp_path):
    campaign = two_stage_campaign()
    first = CampaignRunner(campaign, campaign_dir=tmp_path / "c").run()
    assert first.complete
    reference = stage_digests(first.manifest)

    manifest_path = tmp_path / "c" / "manifest.json"
    data = manifest_path.read_bytes()
    manifest_path.write_bytes(data[: len(data) // 2])  # torn write

    runner = CampaignRunner(campaign, campaign_dir=tmp_path / "c")
    recovered = runner.load_manifest()
    assert recovered is not None  # served from manifest.json.bak
    assert (tmp_path / "c" / "quarantine" / "manifest.json").exists()

    resumed = runner.run(require_manifest=True)
    assert resumed.complete
    assert stage_digests(resumed.manifest) == reference


def test_both_manifests_torn_means_a_fresh_campaign(tmp_path):
    campaign = two_stage_campaign()
    CampaignRunner(campaign, campaign_dir=tmp_path / "c").run()
    for name in ("manifest.json", "manifest.json.bak"):
        (tmp_path / "c" / name).write_bytes(b"{")
    runner = CampaignRunner(campaign, campaign_dir=tmp_path / "c")
    assert runner.load_manifest() is None
    with pytest.raises(CampaignError):
        runner.run(require_manifest=True)


def test_wrong_campaign_manifest_still_raises(tmp_path):
    CampaignRunner(two_stage_campaign(), campaign_dir=tmp_path / "c").run()
    with pytest.raises(CampaignError):
        CampaignRunner(
            braided_campaign(), campaign_dir=tmp_path / "c"
        ).load_manifest()


def test_chaos_run_converges_on_a_tiny_campaign(tmp_path):
    plan = FaultPlan(
        name="mini",
        seed=3,
        faults=(
            Fault(kind="worker_kill", at=0),
            Fault(kind="adapter_error", at=0),
            Fault(kind="corrupt_cache", at=0),
            Fault(kind="torn_manifest", at=1),
        ),
        interrupt_after_shards=1,
    )
    report = run_chaos(
        two_stage_campaign(),
        chaos_dir=tmp_path / "chaos",
        plan=plan,
        jobs=2,
        retries=2,
        timeout=30.0,
    )
    assert report.converged, report.summary()
    assert report.interrupted
    assert report.fired.get("interrupt") == 1
    assert report.fired.get("adapter_error", 0) >= 1
    on_disk = json.loads((tmp_path / "chaos" / "chaos_report.json").read_text())
    assert on_disk["converged"] is True
    assert on_disk["plan"]["name"] == "mini"
    # The chaos manifest recorded the recovery work it had to do.
    assert report.resilience["stage_retries"] >= 1
