"""Domains: XY paths, convexity, exclusivity (property-based)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.chip import Chip
from repro.core.domain import Domain, DomainSet, is_convex, xy_path
from repro.errors import ConvexityError

coords = st.tuples(st.integers(0, 7), st.integers(0, 7))


def test_xy_path_goes_x_then_y():
    assert xy_path((0, 0), (2, 2)) == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]


def test_xy_path_handles_negative_directions():
    assert xy_path((2, 2), (0, 0)) == [(2, 2), (1, 2), (0, 2), (0, 1), (0, 0)]


@given(coords, coords)
def test_xy_path_endpoints_and_length(a, b):
    path = xy_path(a, b)
    assert path[0] == a
    assert path[-1] == b
    assert len(path) == abs(a[0] - b[0]) + abs(a[1] - b[1]) + 1
    # Each step moves exactly one grid unit.
    for u, v in zip(path, path[1:]):
        assert abs(u[0] - v[0]) + abs(u[1] - v[1]) == 1


@given(
    st.integers(0, 5), st.integers(0, 5), st.integers(1, 3), st.integers(1, 3)
)
def test_rectangles_are_always_convex(x0, y0, w, h):
    nodes = {(x, y) for x in range(x0, x0 + w) for y in range(y0, y0 + h)}
    assert is_convex(nodes)


def test_l_shape_is_not_convex():
    nodes = {(0, 0), (0, 1), (1, 1)}
    assert not is_convex(nodes)


def test_disconnected_set_is_not_convex():
    assert not is_convex({(0, 0), (2, 2)})


def test_empty_and_singleton_are_convex():
    assert is_convex(set())
    assert is_convex({(3, 3)})


def test_domain_rejects_non_convex():
    with pytest.raises(ConvexityError):
        Domain("bad", frozenset({(0, 0), (0, 1), (1, 1)}))


def test_domain_rejects_empty_and_bad_weight():
    with pytest.raises(ConvexityError):
        Domain("empty", frozenset())
    with pytest.raises(ConvexityError):
        Domain("w", frozenset({(0, 0)}), weight=0.0)


def test_domain_validate_on_chip_rejects_shared_nodes():
    chip = Chip()
    domain = Domain("vm", frozenset({(4, 0)}))
    with pytest.raises(ConvexityError):
        domain.validate_on(chip)


def test_domain_rows_and_capacity():
    chip = Chip()
    domain = Domain("vm", frozenset({(0, 0), (0, 1), (1, 0), (1, 1)}))
    assert domain.rows() == {0, 1}
    assert domain.capacity_threads(chip) == 16
    assert domain.size == 4


def test_domain_set_rejects_overlap():
    chip = Chip()
    domains = DomainSet(chip)
    domains.add(Domain("a", frozenset({(0, 0), (1, 0)})))
    with pytest.raises(ConvexityError):
        domains.add(Domain("b", frozenset({(1, 0), (2, 0)})))


def test_domain_set_rejects_duplicate_name():
    chip = Chip()
    domains = DomainSet(chip)
    domains.add(Domain("a", frozenset({(0, 0)})))
    with pytest.raises(ConvexityError):
        domains.add(Domain("a", frozenset({(2, 2)})))


def test_domain_set_owner_lookup_and_remove():
    chip = Chip()
    domains = DomainSet(chip)
    domains.add(Domain("a", frozenset({(0, 0)})))
    assert domains.owner_of((0, 0)) == "a"
    assert domains.owner_of((5, 5)) is None
    removed = domains.remove("a")
    assert removed.name == "a"
    with pytest.raises(ConvexityError):
        domains.remove("a")


@given(st.sets(coords, min_size=2, max_size=6))
def test_convexity_implies_turn_containment(nodes):
    # The property the architecture relies on: convex => the XY turn
    # node of every pair is inside the set.
    if is_convex(nodes):
        for a in nodes:
            for b in nodes:
                assert (b[0], a[1]) in nodes
