"""Fleet observability: journals, spans, timeline checks, dashboards."""

import json

import pytest

from repro.dispatch import Broker, BrokerServer, DispatchExecutor, ManualClock
from repro.errors import ConfigurationError
from repro.network.config import SimulationConfig
from repro.obs import validate_chrome_trace
from repro.obs.fleet import (
    JournalWriter,
    batch_trace_id,
    check_timeline,
    export_fleet_trace,
    journal_digest,
    lease_span_id,
    merge_journals,
    read_journal,
    render_campaign_dashboard,
    render_fleet_dashboard,
    span_id,
    stage_trace_id,
    strip_wall,
    trace_id,
    watch,
)
from repro.obs.fleet.fleetcollect import journal_paths
from repro.runtime.spec import RunSpec

_CFG = SimulationConfig(frame_cycles=2000, seed=4)


def _specs(count=1, cycles=200):
    return [
        RunSpec(topology="mesh_x1", workload="uniform",
                rate=0.03 + 0.01 * index, config=_CFG,
                cycles=cycles, warmup=cycles // 4)
        for index in range(count)
    ]


def _submit(broker, specs, trace=None):
    entries = [{"spec": s.to_json(), "label": s.label()} for s in specs]
    if trace is not None:
        for entry in entries:
            entry["trace"] = trace
    return broker.handle("submit", {"specs": entries})


# -- span/trace id derivation -----------------------------------------


def test_span_ids_are_deterministic_content_hashes():
    assert trace_id("stage", "abc", 0) == trace_id("stage", "abc", 0)
    assert len(trace_id("x")) == 32
    assert len(span_id(trace_id("x"), "spec")) == 16
    assert trace_id("x") != trace_id("y")
    assert stage_trace_id("deadbeef", 0) != stage_trace_id("deadbeef", 1)
    assert lease_span_id("t" * 32, "s" * 12, "lease-1") != lease_span_id(
        "t" * 32, "s" * 12, "lease-2"
    )


def test_batch_trace_id_ignores_spec_order():
    assert batch_trace_id(["bbb", "aaa"]) == batch_trace_id(["aaa", "bbb"])


# -- journal writer / reader ------------------------------------------


def test_journal_round_trip_and_tail(tmp_path):
    path = tmp_path / "broker.journal.jsonl"
    with JournalWriter(path, actor="broker", meta={"run": "t1"}) as journal:
        journal.emit("broker.submit", trace="t" * 32, spec_hash="a" * 64)
        journal.emit("broker.claim", spec_hash="a" * 64, lease="L0",
                     worker="w0")
        assert [r["event"] for r in journal.tail()] == [
            "broker.submit", "broker.claim",
        ]
    doc = read_journal(path)
    assert doc.actor == "broker"
    assert doc.meta == {"run": "t1"}
    assert [r["seq"] for r in doc.records] == [0, 1]
    assert doc.records[0]["trace"] == "t" * 32
    assert doc.records[1]["data"]["lease"] == "L0"


def test_journal_rejects_unknown_event(tmp_path):
    journal = JournalWriter(tmp_path / "j.journal.jsonl", actor="broker")
    with pytest.raises(ValueError, match="unknown journal event"):
        journal.emit("broker.levitate", spec_hash="x")
    journal.close()


def test_journal_resume_continues_seq(tmp_path):
    path = tmp_path / "j.journal.jsonl"
    with JournalWriter(path, actor="campaign") as journal:
        journal.emit("campaign.stage_start", stage="fig3")
    with JournalWriter(path, actor="campaign") as journal:
        journal.emit("campaign.stage_finish", stage="fig3")
    assert [r["seq"] for r in read_journal(path).records] == [0, 1]


def test_journal_resume_refuses_actor_mismatch(tmp_path):
    path = tmp_path / "j.journal.jsonl"
    with JournalWriter(path, actor="broker") as journal:
        journal.emit("broker.submit", spec_hash="a")
    with pytest.raises(ConfigurationError, match="belongs to actor"):
        JournalWriter(path, actor="worker-1")


def test_read_journal_rejects_corruption(tmp_path):
    path = tmp_path / "j.journal.jsonl"
    with JournalWriter(path, actor="broker") as journal:
        journal.emit("broker.submit", spec_hash="a")
        journal.emit("broker.claim", spec_hash="a", lease="L0")

    lines = path.read_text().splitlines()

    torn = tmp_path / "torn.journal.jsonl"
    torn.write_text("\n".join(lines[:2] + [lines[2][: len(lines[2]) // 2]]))
    with pytest.raises(ConfigurationError, match="line 3"):
        read_journal(torn)

    bad_seq = tmp_path / "seq.journal.jsonl"
    record = json.loads(lines[2])
    record["seq"] = 7
    bad_seq.write_text("\n".join([lines[0], lines[1], json.dumps(record)]))
    with pytest.raises(ConfigurationError, match="seq 7, expected 1"):
        read_journal(bad_seq)

    bad_event = tmp_path / "event.journal.jsonl"
    record = json.loads(lines[1])
    record["event"] = "broker.levitate"
    bad_event.write_text("\n".join([lines[0], json.dumps(record)]))
    with pytest.raises(ConfigurationError, match="unknown event"):
        read_journal(bad_event)

    missing = tmp_path / "missing.journal.jsonl"
    record = json.loads(lines[1])
    del record["wall"]
    missing.write_text("\n".join([lines[0], json.dumps(record)]))
    with pytest.raises(ConfigurationError, match="missing wall"):
        read_journal(missing)

    not_journal = tmp_path / "other.journal.jsonl"
    not_journal.write_text('{"format": "something-else", "version": 1}\n')
    with pytest.raises(ConfigurationError, match="not a repro-obs-journal"):
        read_journal(not_journal)

    wrong_version = tmp_path / "v99.journal.jsonl"
    wrong_version.write_text(
        '{"format": "repro-obs-journal", "version": 99, "actor": "x"}\n'
    )
    with pytest.raises(ConfigurationError, match="unsupported version"):
        read_journal(wrong_version)


def test_strip_wall_removes_tainted_fields():
    record = {
        "seq": 0, "actor": "w", "event": "worker.execute", "wall": 123.4,
        "data": {"spec_hash": "a", "elapsed_s": 0.5},
    }
    stripped = strip_wall(record)
    assert "wall" not in stripped
    assert stripped["data"] == {"spec_hash": "a"}
    # The original record is untouched.
    assert record["data"]["elapsed_s"] == 0.5


# -- dispatch seams: determinism, bit-neutrality, gauges ---------------


def _run_dispatch_batch(journal_dir=None, jobs=2):
    executor = DispatchExecutor(
        jobs=jobs,
        journal_dir=str(journal_dir) if journal_dir is not None else None,
    )
    try:
        return executor.run(_specs(3))
    finally:
        executor.close()


def test_journaled_dispatch_is_bit_neutral_and_deterministic(tmp_path):
    plain = _run_dispatch_batch()
    first = _run_dispatch_batch(tmp_path / "a")
    second = _run_dispatch_batch(tmp_path / "b")

    rows = lambda outcome: [r.to_json() for r in outcome.results]  # noqa: E731
    assert rows(plain) == rows(first) == rows(second)

    paths_a = journal_paths(tmp_path / "a")
    paths_b = journal_paths(tmp_path / "b")
    assert [p.name for p in paths_a] == [p.name for p in paths_b]
    assert len(paths_a) >= 2  # broker + at least one worker
    for path_a, path_b in zip(paths_a, paths_b):
        assert journal_digest(path_a) == journal_digest(path_b)


def test_journaled_dispatch_timeline_is_sound(tmp_path):
    _run_dispatch_batch(tmp_path)
    timeline = merge_journals(journal_paths(tmp_path))
    assert check_timeline(timeline) == []
    assert "broker" in timeline.actors
    # One trace covers the whole batch, stamped on every spec record.
    traces = timeline.traces()
    assert len(traces) == 1 and len(traces[0]) == 32
    events = [r["event"] for r in timeline.for_trace(traces[0])]
    assert events.count("broker.submit") == 3
    assert events.count("broker.complete") == 3


def test_export_fleet_trace_validates(tmp_path):
    _run_dispatch_batch(tmp_path / "journals")
    out = tmp_path / "fleet_trace.json"
    digest, problems = export_fleet_trace(tmp_path / "journals", out)
    assert problems == []
    assert len(digest) == 64
    document = validate_chrome_trace(out)
    names = {event.get("name") for event in document["traceEvents"]}
    assert "queue-wait" in names or any(
        name and name.startswith("lease") for name in names
    )


def test_fleet_gauges_reported_in_dispatch_telemetry(tmp_path):
    outcome = _run_dispatch_batch(tmp_path)
    fleet = outcome.dispatch.get("fleet")
    assert fleet is not None
    assert fleet["inflight"] == 0
    assert fleet["queue_depth"] == 0
    assert fleet["workers"] >= 1


# -- orphan / incompleteness detection --------------------------------


def test_check_timeline_flags_orphans_and_incomplete(tmp_path):
    trace = "t" * 32
    with JournalWriter(tmp_path / "broker.journal.jsonl",
                       actor="broker") as journal:
        journal.emit("broker.submit", trace=trace, spec_hash="a" * 64)
    with JournalWriter(tmp_path / "w0.journal.jsonl",
                       actor="w0") as journal:
        # Executes under a lease the broker never granted.
        journal.emit("worker.execute", trace=trace, spec_hash="a" * 64,
                     lease="L-forged")
    timeline = merge_journals(journal_paths(tmp_path))
    problems = check_timeline(timeline)
    assert any("orphan worker span" in p for p in problems)
    assert any("incomplete spec" in p for p in problems)


def test_check_timeline_flags_unclosed_shards(tmp_path):
    path = tmp_path / "campaign.journal.jsonl"
    with JournalWriter(path, actor="campaign") as journal:
        journal.emit("campaign.stage_start", trace="s" * 32, stage="fig4")
        journal.emit("campaign.shard_start", trace="s" * 32, stage="fig4",
                     shard=0)
    problems = check_timeline(merge_journals([path]))
    assert any("unbalanced shard" in p for p in problems)
    assert any("unbalanced stage" in p for p in problems)


# -- broker gauges, /metrics and /journal ------------------------------


def test_broker_gauges_track_queue_and_lease_age():
    clock = ManualClock()
    broker = Broker(clock=clock, lease_seconds=10.0)
    specs = _specs(2)
    _submit(broker, specs)
    status = broker.handle("status", {})
    assert status["gauges"] == {
        "queue_depth": 2, "inflight": 0, "oldest_lease_age_s": 0.0,
    }
    broker.handle("claim", {"worker": "w0"})
    clock.advance(3.0)
    status = broker.handle("status", {})
    assert status["gauges"]["queue_depth"] == 1
    assert status["gauges"]["inflight"] == 1
    assert status["gauges"]["oldest_lease_age_s"] == pytest.approx(3.0)
    assert status["workers"]["w0"] == pytest.approx(3.0)


def test_broker_metrics_and_journal_endpoints(tmp_path):
    import urllib.request

    journal = JournalWriter(tmp_path / "broker.journal.jsonl",
                            actor="broker")
    broker = Broker(journal=journal)
    _submit(broker, _specs(1))
    with BrokerServer(broker) as server:
        with urllib.request.urlopen(f"{server.url}/metrics") as response:
            metrics = json.load(response)
        assert metrics["journaling"] is True
        assert metrics["gauges"]["queue_depth"] == 1
        assert "engine" in metrics
        with urllib.request.urlopen(f"{server.url}/journal") as response:
            tail = json.load(response)
        assert [r["event"] for r in tail["records"]] == ["broker.submit"]
        assert tail["path"].endswith("broker.journal.jsonl")
        try:
            urllib.request.urlopen(f"{server.url}/secrets")
        except urllib.error.HTTPError as error:
            assert error.code == 404
        else:  # pragma: no cover - the request must 404
            raise AssertionError("unknown GET path did not 404")
    journal.close()


def test_journal_endpoint_empty_without_journaling():
    broker = Broker()
    document = broker.handle("journal", {})
    assert document["records"] == []


# -- dashboards and the watch loop ------------------------------------


def test_render_fleet_dashboard_shows_counts_and_workers():
    panel = render_fleet_dashboard(
        {
            "counts": {"queued": 1, "leased": 1, "done": 2, "failed": 0},
            "counters": {"submitted": 4, "requeues": 0},
            "gauges": {"queue_depth": 1, "inflight": 1,
                       "oldest_lease_age_s": 2.5},
            "workers": {"w0": 0.4},
        },
        title="test",
    )
    assert "=== test ===" in panel
    assert "2/4" in panel
    assert "oldest_lease_age_s=2.5" in panel
    assert "w0" in panel
    assert "submitted=4" in panel


def test_render_campaign_dashboard_reads_manifest_shape():
    manifest = {
        "campaign": "smoke",
        "stages": {
            "fig4": {
                "status": "complete",
                "shards": [{"status": "complete"}, {"status": "complete"}],
            },
            "table2": {"status": "failed", "shards": [None], "retries": 1},
        },
        "telemetry": {"resilience": {"dispatch": {"completions": 3}}},
    }
    panel = render_campaign_dashboard(manifest)
    assert "campaign smoke [failed]" in panel
    assert "2/2 shards" in panel
    assert "FAILED" in panel and "1 retried" in panel
    assert "completions=3" in panel


def test_watch_draws_single_frame_on_non_tty():
    import io

    stream = io.StringIO()
    frames = watch(lambda: "panel", interval=0.0, stream=stream)
    assert frames == 1
    assert stream.getvalue() == "panel\n"
    assert "\x1b" not in stream.getvalue()


def test_watch_redraws_on_tty_until_render_stops():
    import io

    class _Clock:
        def __init__(self):
            self.slept = []

        def sleep(self, seconds):
            self.slept.append(seconds)

    panels = ["one", "two", None]
    stream = io.StringIO()
    clock = _Clock()
    frames = watch(lambda: panels.pop(0), interval=1.5, stream=stream,
                   force_tty=True, clock=clock)
    assert frames == 2
    assert clock.slept == [1.5, 1.5]
    assert stream.getvalue().startswith("one\n\x1b[H\x1b[J")
