"""DispatchExecutor: serial equivalence, fault recovery, degradation."""

import pytest

from repro.dispatch import DispatchExecutor
from repro.errors import ExecutionFailed
from repro.network.config import SimulationConfig
from repro.resilience import Fault, FaultPlan, RetryPolicy
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SerialExecutor
from repro.runtime.spec import RunSpec

_CFG = SimulationConfig(frame_cycles=2000, seed=4)

_FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


def _specs(count=3, cycles=250):
    return [
        RunSpec(topology="mesh_x1", workload="uniform",
                rate=0.03 + 0.01 * index, config=_CFG,
                cycles=cycles, warmup=cycles // 4)
        for index in range(count)
    ]


def test_local_dispatch_matches_the_serial_reference():
    specs = _specs()
    serial = SerialExecutor().map(specs)
    with DispatchExecutor(jobs=2) as ex:
        outcome = ex.run(specs)
    assert outcome.results == serial
    assert outcome.simulated == len(specs)
    assert outcome.dispatch["submitted"] == len(specs)
    assert outcome.dispatch["completions"] == len(specs)
    assert outcome.dispatch["degraded_specs"] == 0
    assert not outcome.degraded


def test_cached_specs_never_reach_the_broker(tmp_path):
    specs = _specs(2)
    cache = ResultCache(tmp_path / "cache")
    with DispatchExecutor(jobs=2) as ex:
        first = ex.run(specs, cache=cache)
        second = ex.run(specs, cache=cache)
    assert first.results == second.results
    assert second.cache_hits == len(specs)
    assert second.simulated == 0
    assert second.dispatch.get("submitted", 0) == 0


def test_directory_target_persists_result_artifacts(tmp_path):
    specs = _specs(2)
    store = tmp_path / "store"
    with DispatchExecutor(str(store), jobs=2) as ex:
        outcome = ex.run(specs)
    assert len(outcome.results) == 2
    paths = sorted(store.glob("*.json"))
    assert [p.stem for p in paths] == sorted(s.content_hash for s in specs)


def test_vanished_workers_task_lands_on_another_worker():
    specs = _specs()
    serial = SerialExecutor().map(specs)
    plan = FaultPlan(
        name="vanish", faults=(Fault(kind="worker_vanish", at=0),)
    )
    with DispatchExecutor(jobs=2, retry=_FAST_RETRY, fault_plan=plan) as ex:
        outcome = ex.run(specs)
        counters = dict(ex.broker.counters)
        fired = ex.injector.summary()
    assert outcome.results == serial  # hash-identical to the serial answer
    assert fired.get("worker_vanish") == 1
    # The abandoned lease expired (via the manual clock) and the task
    # was requeued onto a surviving worker — exactly once.
    assert counters["leases_expired"] == 1
    assert counters["requeues"] == 1
    assert counters["leases_granted"] == len(specs) + 1


def test_every_worker_vanishing_recruits_a_replacement():
    specs = _specs(2)
    serial = SerialExecutor().map(specs)
    plan = FaultPlan(
        name="wipeout",
        faults=(Fault(kind="worker_vanish", at=0),
                Fault(kind="worker_vanish", at=1)),
    )
    with DispatchExecutor(jobs=2, retry=_FAST_RETRY, fault_plan=plan) as ex:
        outcome = ex.run(specs)
        counters = dict(ex.broker.counters)
    assert outcome.results == serial
    assert counters.get("recruited_agents", 0) >= 1


def test_duplicate_result_delivery_is_absorbed():
    specs = _specs(2)
    serial = SerialExecutor().map(specs)
    plan = FaultPlan(
        name="dup", faults=(Fault(kind="duplicate_result", at=0),)
    )
    with DispatchExecutor(jobs=2, retry=_FAST_RETRY, fault_plan=plan) as ex:
        outcome = ex.run(specs)
    assert outcome.results == serial
    assert outcome.dispatch["duplicate_results"] == 1
    assert outcome.dispatch["completions"] == len(specs)


def test_unreachable_broker_degrades_to_the_local_pool():
    specs = _specs(2)
    serial = SerialExecutor().map(specs)
    with DispatchExecutor(
        "http://127.0.0.1:9", jobs=2, retry=_FAST_RETRY
    ) as ex:
        outcome = ex.run(specs)
    assert outcome.degraded
    assert outcome.dispatch["degraded_specs"] == len(specs)
    assert outcome.results == serial


def test_spec_errors_exhaust_retries_and_raise_execution_failed(monkeypatch):
    def boom(spec):
        raise RuntimeError("synthetic execution failure")

    monkeypatch.setattr("repro.dispatch.worker.execute_spec", boom)
    specs = _specs(2)
    observed = []
    ex = DispatchExecutor(
        jobs=2, retry=RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0)
    )
    ex.failure_listener = observed.append
    with ex:
        with pytest.raises(ExecutionFailed) as excinfo:
            ex.run(specs)
    error = excinfo.value
    assert len(error.failures) == 2
    assert all(record.kind == "error" for record in error.failures)
    assert all(not record.retried for record in error.failures)
    assert "synthetic execution failure" in error.failures[0].detail
    assert error.outcome is not None
    assert error.outcome.dispatch["task_retries"] == 2
    assert error.outcome.dispatch["failed_tasks"] == 2
    assert [record.retried for record in observed] == [False, False]


def test_dispatch_counters_are_per_batch_deltas():
    with DispatchExecutor(jobs=2) as ex:
        ex.run(_specs(3))
        second = ex.run(_specs(2, cycles=300))
    # The broker is cumulative across batches; the outcome is not.
    assert second.dispatch["submitted"] == 2
    assert second.dispatch["completions"] == 2
