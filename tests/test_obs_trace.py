"""Chrome trace exporter: event structure, balance, validation."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.network.config import SimulationConfig
from repro.network.engine import ColumnSimulator
from repro.obs import (
    ObsSession,
    build_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.chrometrace import ENGINE_PID, PACKETS_PID
from repro.obs.collect import LifecycleCollector
from repro.qos.pvc import PvcPolicy
from repro.topologies.registry import get_topology
from repro.traffic.workloads import full_column_workload


def observed_run(cycles=1500, rate=0.25):
    config = SimulationConfig(frame_cycles=1000, seed=9)
    build = get_topology("mecs").build(config)
    simulator = ColumnSimulator(
        build, full_column_workload(rate), PvcPolicy(), config
    )
    session = ObsSession(window=500, timeline=True)
    session.attach(simulator)
    simulator.run(cycles)
    session.finalize(simulator.cycle)
    return session


def test_packet_spans_balance_and_validate(tmp_path):
    session = observed_run()
    events = build_trace_events(
        session.lifecycle, session.activity, flow_labels=session.flow_labels
    )
    path = tmp_path / "t.trace.json"
    write_chrome_trace(path, events)
    document = validate_chrome_trace(path)  # raises on any violation
    parsed = document["traceEvents"]
    begins = [e for e in parsed if e.get("ph") == "b"]
    ends = [e for e in parsed if e.get("ph") == "e"]
    assert len(begins) == len(ends) == len(session.lifecycle.records)
    # Delivered packets carry their latency on the end event.
    latencies = [e["args"]["latency"] for e in ends if "latency" in e["args"]]
    assert latencies and all(lat >= 0 for lat in latencies)
    # One thread-name metadata row per flow in the packets process.
    thread_names = [
        e for e in parsed
        if e["ph"] == "M" and e["name"] == "thread_name"
        and e["pid"] == PACKETS_PID
    ]
    assert len(thread_names) == len(session.flow_labels)


def test_engine_process_has_skip_spans(tmp_path):
    session = observed_run(cycles=4000, rate=0.01)  # idle-heavy: skips
    assert session.activity.skips
    events = build_trace_events(
        session.lifecycle, session.activity, flow_labels=session.flow_labels
    )
    spans = [e for e in events if e.get("ph") == "X"]
    assert len(spans) == len(session.activity.skips)
    assert all(e["pid"] == ENGINE_PID and e["dur"] > 0 for e in spans)
    frames = [
        e for e in events
        if e.get("ph") == "i" and e.get("cat") == "engine"
    ]
    assert len(frames) == len(session.activity.frames) > 0


def test_in_flight_packet_closes_after_last_event():
    lifecycle = LifecycleCollector()
    lifecycle.on_admit(5, 0, 0, 1, 2, 4)
    lifecycle.on_inject(7, 0, 0, "inj", 0)
    lifecycle.on_hop(9, 0, 0, 3, "MS", 4, False)  # never delivered
    events = build_trace_events(lifecycle, None, flow_labels=["f0"])
    end = next(e for e in events if e.get("ph") == "e")
    assert end["ts"] == 10  # one past the last seen event
    assert end["args"] == {"in_flight": True}
    assert not any(e["pid"] == ENGINE_PID for e in events)


def test_activity_none_skips_engine_process(tmp_path):
    lifecycle = LifecycleCollector()
    lifecycle.on_admit(0, 0, 0, 0, 1, 2)
    lifecycle.on_deliver(4, 0, 0, 1, 2, 4)
    path = tmp_path / "t.trace.json"
    write_chrome_trace(
        path, build_trace_events(lifecycle, None, flow_labels=["f0"])
    )
    document = validate_chrome_trace(path)
    assert all(
        e["pid"] == PACKETS_PID for e in document["traceEvents"]
    )


def test_validate_rejects_bad_json(tmp_path):
    path = tmp_path / "bad.trace.json"
    path.write_text("{not json")
    with pytest.raises(ConfigurationError):
        validate_chrome_trace(path)


def test_validate_rejects_empty_and_malformed_events(tmp_path):
    path = tmp_path / "t.trace.json"
    path.write_text(json.dumps({"traceEvents": []}))
    with pytest.raises(ConfigurationError):
        validate_chrome_trace(path)
    path.write_text(json.dumps({"traceEvents": [{"ph": "i"}]}))
    with pytest.raises(ConfigurationError, match="missing"):
        validate_chrome_trace(path)


def test_validate_rejects_unbalanced_async(tmp_path):
    path = tmp_path / "t.trace.json"
    begin = {
        "name": "pkt", "cat": "packet", "ph": "b", "id": "0",
        "pid": 1, "tid": 0, "ts": 0,
    }
    path.write_text(json.dumps({"traceEvents": [begin]}))
    with pytest.raises(ConfigurationError, match="unbalanced"):
        validate_chrome_trace(path)
    end = dict(begin, ph="e")
    path.write_text(json.dumps({"traceEvents": [end, begin]}))
    with pytest.raises(ConfigurationError, match="end before begin"):
        validate_chrome_trace(path)
