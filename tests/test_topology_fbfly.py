"""Flattened-butterfly extension topology."""

import pytest

from repro.network.config import COLUMN_NODES
from repro.network.packet import RouteRequest
from repro.topologies.flattened_butterfly import FlattenedButterflyTopology
from repro.topologies.registry import EXTENDED_TOPOLOGY_NAMES, get_topology

from helpers import build_simulator


def _route(build, src, dst):
    request = RouteRequest(
        src_node=src,
        dst_node=dst,
        injection_station=build.injection_station[(src, "terminal")],
    )
    return build.route_builder(request)


def test_registered_as_extension():
    assert "fbfly" in EXTENDED_TOPOLOGY_NAMES
    assert get_topology("fbfly").name == "fbfly"


def test_single_hop_reach():
    build = FlattenedButterflyTopology().build()
    stations, segments = _route(build, 0, 7)
    assert len(stations) == 2
    assert segments[0][1] == 7  # wire delay = distance


def test_dedicated_channel_per_pair():
    build = FlattenedButterflyTopology().build()
    # Unlike MECS, every (src, dst) pair gets its own channel.
    ports = {_route(build, 2, dst)[1][0][0] for dst in range(8) if dst != 2}
    assert len(ports) == 7


def test_landing_station_per_source():
    build = FlattenedButterflyTopology().build()
    landings = {_route(build, src, 3)[0][1] for src in range(8) if src != 3}
    assert len(landings) == 7


def test_no_channel_serialisation_between_destinations():
    # Two packets from node 0 to different destinations never contend
    # for a column channel (they do in MECS).
    fb = FlattenedButterflyTopology().build()
    _, to_5 = _route(fb, 0, 5)
    _, to_6 = _route(fb, 0, 6)
    assert to_5[0][0] != to_6[0][0]
    mecs = get_topology("mecs").build()
    _, m5 = _route(mecs, 0, 5)
    _, m6 = _route(mecs, 0, 6)
    assert m5[0][0] == m6[0][0]


def test_simulates_and_delivers():
    sim = build_simulator("fbfly")
    stats = sim.run(3000)
    assert stats.delivered_packets > 0


def test_geometry_shape():
    geometry = FlattenedButterflyTopology().geometry()
    assert geometry.crossbar_outputs > geometry.crossbar_inputs
    assert geometry.flow_table_copies == COLUMN_NODES


def test_mesh_replica_policy_validation():
    from repro.errors import TopologyError
    from repro.topologies.mesh import MeshTopology

    with pytest.raises(TopologyError):
        MeshTopology(2, replica_policy="random")


def test_per_flow_policy_is_static():
    from repro.topologies.mesh import MeshTopology

    build = MeshTopology(4, replica_policy="per_flow").build()
    routes = set()
    for hint in range(8):
        request = RouteRequest(
            src_node=0, dst_node=5,
            injection_station=build.injection_station[(0, "terminal")],
            replica_hint=hint,
        )
        routes.add(build.route_builder(request))
    assert len(routes) == 1  # hint is ignored; the flow is pinned
