"""Resume semantics: interrupt mid-run, resume, byte-identical artifacts.

The acceptance contract: a ParallelExecutor-backed campaign killed at
an arbitrary checkpoint and then resumed must produce a manifest whose
artifact digests — and the artifact bytes themselves — are identical
to an uninterrupted run, with completed stages served from the
manifest (zero executor batches) and the interrupted stage's finished
simulations served from the result cache (zero re-executions).
"""

import json
from pathlib import Path

import pytest

from repro.campaign import CampaignSpec, StageSpec, run_campaign, stage_digests
from repro.errors import CampaignInterrupted
from repro.runtime.cache import ResultCache
from repro.runtime.executor import ParallelExecutor


def resumable_campaign():
    """Three stages, one sharded, with a dependency edge."""
    return CampaignSpec(
        name="resume-test",
        description="interrupt/resume semantics",
        stages=(
            StageSpec("area", "fig3"),
            StageSpec(
                "sat",
                "saturation",
                params={"cycles": 300, "topology_names": ["mesh_x1", "mecs"]},
                shards=(
                    {"topology_names": ["mesh_x1"]},
                    {"topology_names": ["mecs"]},
                ),
            ),
            StageSpec(
                "window",
                "ablation_window",
                params={"windows": [1, 4], "cycles": 400},
                depends_on=("sat",),
            ),
        ),
    )


class CountingParallelExecutor(ParallelExecutor):
    """ParallelExecutor that records every batch handed to it."""

    def __init__(self, jobs=2):
        super().__init__(jobs=jobs)
        self.batches = 0
        self.specs_seen = []
        self.simulated = 0

    def run(self, specs, *, cache=None, progress=None):
        self.batches += 1
        self.specs_seen.extend(specs)
        outcome = super().run(specs, cache=cache, progress=progress)
        self.simulated += outcome.simulated
        return outcome


def _artifact_bytes(root: Path) -> dict[str, bytes]:
    return {
        path.relative_to(root).as_posix(): path.read_bytes()
        for path in sorted((root / "artifacts").rglob("*.json"))
    }


@pytest.mark.parametrize(
    "stop_stage,stop_shard",
    [("sat", 0), ("sat", 1)],
    ids=["mid-stage", "stage-boundary"],
)
def test_interrupted_resume_matches_uninterrupted_run(
    tmp_path, stop_stage, stop_shard
):
    campaign = resumable_campaign()

    # Reference: uninterrupted run with its own cache.
    ref_cache = ResultCache(tmp_path / "cache-ref")
    reference = run_campaign(
        campaign,
        campaign_dir=tmp_path / "ref",
        executor=ParallelExecutor(jobs=2),
        cache=ref_cache,
    )
    assert reference.complete

    # Interrupted run: kill at the requested checkpoint...
    cache = ResultCache(tmp_path / "cache")
    with pytest.raises(CampaignInterrupted):
        run_campaign(
            campaign,
            campaign_dir=tmp_path / "run",
            executor=ParallelExecutor(jobs=2),
            cache=cache,
            stop_after=lambda stage, shard: (stage, shard)
            == (stop_stage, stop_shard),
        )
    manifest = json.loads((tmp_path / "run" / "manifest.json").read_text())
    assert manifest["stages"][stop_stage]["status"] != "complete"

    # ... and resume with a counting executor.
    counting = CountingParallelExecutor(jobs=2)
    resumed = run_campaign(
        campaign,
        campaign_dir=tmp_path / "run",
        executor=counting,
        cache=cache,
        require_manifest=True,
    )
    assert resumed.complete

    # Completed stages were served from the manifest (zero executor
    # batches for them), and completed *shards* of the interrupted
    # stage were served from their checkpoints: the only saturation
    # specs the resume executor may see belong to shards at or after
    # the stop point.
    assert "area" in resumed.reused_stages
    seen = {(spec.workload, spec.topology) for spec in counting.specs_seen}
    if stop_shard == 0:
        # sat shard 0 (mesh_x1) finished before the kill; only shard 1
        # (mecs) and the dependent window stage execute on resume.
        assert ("full_column", "mesh_x1") not in seen
        assert ("full_column", "mecs") in seen
    else:
        # Both sat shards finished; only the window stage executes.
        assert all(workload == "single_flow" for workload, _ in seen)

    # Nothing completed was simulated twice: the interrupted run's
    # simulations plus the resume's actual simulations add up to
    # exactly the uninterrupted run's unique-spec count.
    def simulated(manifest_dict):
        return sum(
            shard["simulated"]
            for entry in manifest_dict["stages"].values()
            for shard in entry.get("shards", [])
            if shard
        )

    assert simulated(manifest) + counting.simulated == simulated(
        reference.manifest
    )

    # Byte-identical artifacts and identical digests.  (The report
    # card carries wall-clock timings, so compare it with those
    # stripped.)
    assert stage_digests(resumed.manifest) == stage_digests(reference.manifest)
    assert _artifact_bytes(tmp_path / "run") == _artifact_bytes(tmp_path / "ref")

    def timeless(path):
        report = json.loads(path.read_text())
        for stage in report["stages"]:
            stage.pop("elapsed_seconds")
        return report

    assert timeless(tmp_path / "run" / "report.json") == timeless(
        tmp_path / "ref" / "report.json"
    )


def test_resume_after_stage_boundary_reexecutes_nothing_completed(tmp_path):
    """Stop exactly between stages: every completed stage resumes for free."""
    campaign = resumable_campaign()
    cache = ResultCache(tmp_path / "cache")
    with pytest.raises(CampaignInterrupted):
        run_campaign(
            campaign,
            campaign_dir=tmp_path / "run",
            executor=ParallelExecutor(jobs=2),
            cache=cache,
            stop_after=lambda stage, shard: (stage, shard) == ("sat", 1),
        )
    counting = CountingParallelExecutor(jobs=2)
    resumed = run_campaign(
        campaign,
        campaign_dir=tmp_path / "run",
        executor=counting,
        cache=cache,
        require_manifest=True,
    )
    # area and sat completed before the interrupt (sat's final shard
    # checkpoint lands before the stop hook fires, but the merged stage
    # artifact does not — so sat re-merges from shard checkpoints with
    # zero simulations, and only `window` actually executes).
    assert resumed.reused_stages == ["area"]
    sat_shards = resumed.manifest["stages"]["sat"]["shards"]
    assert all(shard["status"] == "complete" for shard in sat_shards)
    window_specs = {spec.workload for spec in counting.specs_seen}
    assert "full_column" not in window_specs  # no saturation spec re-ran
    # All simulated work on resume belongs to `window`.
    assert window_specs <= {"single_flow"}


def test_cache_shared_across_directories_gives_zero_simulation_resume(tmp_path):
    """A fresh campaign dir with a warm cache simulates nothing."""
    campaign = resumable_campaign()
    cache = ResultCache(tmp_path / "cache")
    run_campaign(
        campaign,
        campaign_dir=tmp_path / "a",
        executor=ParallelExecutor(jobs=2),
        cache=cache,
    )
    second = run_campaign(
        campaign,
        campaign_dir=tmp_path / "b",
        executor=ParallelExecutor(jobs=2),
        cache=cache,
    )
    for entry in second.manifest["stages"].values():
        for shard in entry["shards"]:
            assert shard["simulated"] == 0
    assert stage_digests(second.manifest) == stage_digests(
        json.loads((tmp_path / "a" / "manifest.json").read_text())
    )
