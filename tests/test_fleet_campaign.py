"""Campaign-level fleet journaling: bit-neutrality and determinism.

The acceptance gate for the journaling seams: a journaled ``--dispatch
local`` smoke campaign must produce stage digests byte-identical to a
journaling-off run, and two journaled replays must produce journals
identical after stripping wall-clock fields.  The three campaign runs
are shared across tests via a module-scoped fixture — they dominate
this file's wall time.
"""

import json

import pytest

from repro.campaign import get_campaign, run_campaign
from repro.dispatch import DispatchExecutor
from repro.obs.fleet import (
    JournalWriter,
    check_timeline,
    journal_digest,
    merge_journals,
)
from repro.obs.fleet.fleetcollect import journal_paths


def _run_smoke(base, name, *, journal):
    """One full smoke campaign through local dispatch; returns digests."""
    journal_dir = base / f"{name}-journal"
    executor = DispatchExecutor(
        jobs=2, journal_dir=str(journal_dir) if journal else None
    )
    writer = (
        JournalWriter(journal_dir / "campaign.journal.jsonl",
                      actor="campaign")
        if journal else None
    )
    try:
        result = run_campaign(
            get_campaign("smoke"),
            campaign_dir=base / name,
            executor=executor,
            journal=writer,
        )
    finally:
        executor.close()
        if writer is not None:
            writer.close()
    assert result.complete
    manifest = json.loads((base / name / "manifest.json").read_text())
    digests = {
        stage: entry["artifact_sha256"]
        for stage, entry in manifest["stages"].items()
    }
    return digests, journal_dir


@pytest.fixture(scope="module")
def smoke_runs(tmp_path_factory):
    base = tmp_path_factory.mktemp("fleet-smoke")
    plain, _ = _run_smoke(base, "plain", journal=False)
    first, first_dir = _run_smoke(base, "first", journal=True)
    second, second_dir = _run_smoke(base, "second", journal=True)
    return plain, first, first_dir, second, second_dir


def test_journaling_is_bit_neutral_to_stage_digests(smoke_runs):
    plain, first, _, second, _ = smoke_runs
    assert plain == first == second
    assert len(plain) == len(get_campaign("smoke").stages)


def test_journal_replays_are_identical_after_wall_strip(smoke_runs):
    _, _, first_dir, _, second_dir = smoke_runs
    first_paths = journal_paths(first_dir)
    second_paths = journal_paths(second_dir)
    assert [p.name for p in first_paths] == [p.name for p in second_paths]
    assert {p.name for p in first_paths} >= {
        "broker.journal.jsonl", "campaign.journal.jsonl",
    }
    for path_a, path_b in zip(first_paths, second_paths):
        assert journal_digest(path_a) == journal_digest(path_b), path_a.name


def test_merged_campaign_timeline_is_causally_complete(smoke_runs):
    _, _, first_dir, _, _ = smoke_runs
    timeline = merge_journals(journal_paths(first_dir))
    assert check_timeline(timeline) == []
    # Every shard gets its own trace; each trace's records begin with
    # the campaign-side shard_start and end with shard_finish.
    shard_traces = [
        record["trace"] for record in timeline.records
        if record["event"] == "campaign.shard_start"
    ]
    assert len(shard_traces) == len(set(shard_traces))
    for trace in shard_traces:
        events = [r["event"] for r in timeline.for_trace(trace)]
        assert events[0] == "campaign.shard_start"
        assert events[-1] == "campaign.shard_finish"
        # Simulated shards route every spec through the broker.
        if "broker.submit" in events:
            assert events.count("broker.submit") == events.count(
                "broker.complete"
            )


def test_fleet_gauges_roll_up_into_campaign_manifest(smoke_runs, tmp_path):
    _, _, first_dir, _, _ = smoke_runs
    # Gauges ride the dispatch telemetry as a nested mapping (point-in-
    # time values, last-write-wins), next to the summed counters.
    base = first_dir.parent
    manifest = json.loads((base / "first" / "manifest.json").read_text())
    dispatch = manifest["telemetry"]["resilience"]["dispatch"]
    assert dispatch["completions"] > 0
    fleet = dispatch.get("fleet")
    assert isinstance(fleet, dict)
    assert fleet["inflight"] == 0
