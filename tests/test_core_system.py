"""TopologyAwareSystem: the end-to-end facade."""

import pytest

from repro.core.chip import ChipConfig
from repro.core.system import TopologyAwareSystem, grid_ascii
from repro.errors import AllocationError, ConfigurationError


@pytest.fixture
def system():
    sys_ = TopologyAwareSystem()
    sys_.admit_vm("web", 24, weight=2.0)
    sys_.admit_vm("db", 16, weight=3.0)
    sys_.admit_vm("analytics", 32, weight=1.0)
    return sys_


def test_rejects_wrong_height_chip():
    with pytest.raises(ConfigurationError):
        TopologyAwareSystem(ChipConfig(width=8, height=4, shared_columns=(2,)))


def test_admitted_vms_are_isolated(system):
    assert system.audit_isolation() == []
    assert system.hypervisor.co_scheduling_ok()


def test_bind_shared_column_covers_every_domain_row(system):
    binding = system.bind_shared_column()
    for name, vm in system.hypervisor.vms.items():
        flow_rows = {
            binding.flows[index].node for index in binding.flows_of(name)
        }
        assert flow_rows == vm.domain.rows()


def test_bound_flows_carry_vm_weights(system):
    binding = system.bind_shared_column()
    for index, owner in enumerate(binding.owners):
        assert binding.flows[index].weight == system.hypervisor.vms[owner].weight


def test_bind_rejects_non_shared_column(system):
    with pytest.raises(ConfigurationError):
        system.bind_shared_column(column=0)


def test_bind_without_vms_raises():
    empty = TopologyAwareSystem()
    with pytest.raises(AllocationError):
        empty.bind_shared_column()


def test_shared_region_simulation_serves_all_vms(system):
    simulator, binding = system.shared_region_simulator("dps", rate_per_flow=0.05)
    stats = simulator.run(4000, warmup=500)
    per_owner = {}
    for index, owner in enumerate(binding.owners):
        per_owner[owner] = per_owner.get(owner, 0) + stats.window_flits_per_flow[index]
    assert all(flits > 0 for flits in per_owner.values())


def test_evict_vm_frees_resources(system):
    system.evict_vm("analytics")
    assert "analytics" not in system.hypervisor.vms
    system.admit_vm("batch", 32)  # refill the freed space


def test_describe_and_ascii(system):
    text = system.describe()
    assert "web" in text and "db" in text
    art = grid_ascii(system)
    assert "#" in art            # shared column
    assert "W" in art or "D" in art  # domains by initial
    assert len(art.splitlines()) == 8
