"""Area model: Figure 3's qualitative structure.

The paper's findings encoded as assertions:

* mesh x1 is the most area-efficient topology;
* mesh x4 has the largest footprint, dominated by its crossbar;
* MECS has the largest buffer footprint but a compact crossbar;
* DPS is comparable to MECS in total;
* mesh x2 is similar to MECS/DPS (at half their bisection bandwidth);
* PVC flow state is never a significant contributor.
"""

import pytest

from repro.models.area import RouterAreaModel
from repro.models.technology import TechnologyParameters
from repro.topologies.registry import TOPOLOGY_NAMES, get_topology


@pytest.fixture(scope="module")
def areas():
    model = RouterAreaModel()
    return {
        name: model.breakdown(get_topology(name).geometry())
        for name in TOPOLOGY_NAMES
    }


def test_mesh_x1_is_most_compact(areas):
    smallest = min(areas, key=lambda name: areas[name].total_mm2)
    assert smallest == "mesh_x1"


def test_mesh_x4_is_largest(areas):
    largest = max(areas, key=lambda name: areas[name].total_mm2)
    assert largest == "mesh_x4"


def test_mesh_x4_crossbar_dominates_its_area(areas):
    breakdown = areas["mesh_x4"]
    assert breakdown.crossbar_mm2 > breakdown.buffers_mm2


def test_mesh_x4_crossbar_roughly_4x_baseline(areas):
    ratio = areas["mesh_x4"].crossbar_mm2 / areas["mesh_x1"].crossbar_mm2
    # 11x11 over 5x5 ports = 4.84x.
    assert 4.0 < ratio < 6.0


def test_mecs_has_largest_buffers(areas):
    assert areas["mecs"].buffers_mm2 == max(a.buffers_mm2 for a in areas.values())


def test_mecs_crossbar_is_compact(areas):
    assert areas["mecs"].crossbar_mm2 == min(
        areas[n].crossbar_mm2 for n in TOPOLOGY_NAMES
    )


def test_dps_total_comparable_to_mecs(areas):
    ratio = areas["dps"].total_mm2 / areas["mecs"].total_mm2
    assert 0.8 < ratio < 1.2


def test_dps_smaller_buffers_larger_crossbar_than_mecs(areas):
    assert areas["dps"].buffers_mm2 < areas["mecs"].buffers_mm2
    assert areas["dps"].crossbar_mm2 > areas["mecs"].crossbar_mm2


def test_mesh_x2_similar_footprint_to_mecs_and_dps(areas):
    for other in ("mecs", "dps"):
        ratio = areas["mesh_x2"].total_mm2 / areas[other].total_mm2
        assert 0.6 < ratio < 1.4


def test_flow_state_is_insignificant(areas):
    for name, breakdown in areas.items():
        assert breakdown.flow_state_mm2 < 0.15 * breakdown.total_mm2, name


def test_row_buffers_identical_across_topologies(areas):
    values = {round(a.row_buffers_mm2, 9) for a in areas.values()}
    assert len(values) == 1


def test_area_scales_with_sram_density():
    dense = TechnologyParameters(sram_um2_per_bit=0.45)
    sparse = TechnologyParameters(sram_um2_per_bit=0.90)
    geometry = get_topology("mecs").geometry()
    assert (
        RouterAreaModel(dense).buffer_area_mm2(geometry)
        < RouterAreaModel(sparse).buffer_area_mm2(geometry)
    )


def test_breakdown_total_is_component_sum(areas):
    for breakdown in areas.values():
        assert breakdown.total_mm2 == pytest.approx(
            breakdown.buffers_mm2
            + breakdown.crossbar_mm2
            + breakdown.flow_state_mm2
        )
