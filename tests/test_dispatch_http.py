"""The HTTP transport: a real broker server on localhost, stdlib-only."""

import threading

import pytest

from repro.dispatch import (
    Broker,
    BrokerServer,
    DispatchExecutor,
    HttpTransport,
    WorkerAgent,
)
from repro.errors import DispatchError, TransportError
from repro.network.config import SimulationConfig
from repro.resilience import RetryPolicy
from repro.runtime.cache import payload_sha256
from repro.runtime.spec import RunSpec

_CFG = SimulationConfig(frame_cycles=2000, seed=4)

_FAST_RETRY = RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0)


def _specs(count=2, cycles=250):
    return [
        RunSpec(topology="mesh_x1", workload="uniform",
                rate=0.03 + 0.01 * index, config=_CFG,
                cycles=cycles, warmup=cycles // 4)
        for index in range(count)
    ]


def test_worker_drains_an_http_broker_end_to_end():
    specs = _specs()
    with BrokerServer(Broker(lease_seconds=30.0)) as server:
        transport = HttpTransport(server.url)
        assert transport.call("ping", {})["ok"]
        transport.call(
            "submit",
            {"specs": [{"spec": s.to_json(), "label": s.label()}
                       for s in specs]},
        )
        agent = WorkerAgent(HttpTransport(server.url), worker_id="w-http")
        counters = agent.run(max_idle=1, poll_seconds=0.01)
        assert counters["completed"] == len(specs)
        response = transport.call("results", {})
        assert response["pending"] == 0 and not response["failures"]
        for entry in response["results"]:
            assert payload_sha256(entry["result"]) == entry["payload_sha256"]
            assert entry["result"]["spec_hash"] == entry["spec_hash"]


def test_dispatch_executor_over_http_matches_serial(tmp_path):
    from repro.runtime.executor import SerialExecutor

    specs = _specs()
    serial = SerialExecutor().map(specs)
    with BrokerServer(Broker(lease_seconds=30.0)) as server:
        worker = WorkerAgent(HttpTransport(server.url), worker_id="w-bg")
        thread = threading.Thread(
            target=worker.run,
            kwargs={"max_tasks": len(specs), "max_idle": 2000,
                    "poll_seconds": 0.01},
            daemon=True,
        )
        thread.start()
        with DispatchExecutor(server.url, poll_seconds=0.01) as ex:
            outcome = ex.run(specs)
        thread.join(timeout=10.0)
    assert outcome.results == serial
    assert outcome.dispatch["completions"] == len(specs)
    assert not outcome.degraded


def test_protocol_errors_map_to_4xx_and_dispatch_error():
    with BrokerServer(Broker()) as server:
        transport = HttpTransport(server.url)
        with pytest.raises(DispatchError):
            transport.call("complete", {"spec_hash": "deadbeef"})
        with pytest.raises(DispatchError):
            transport.call("bogus", {})


def test_unreachable_server_exhausts_retries_to_transport_error():
    transport = HttpTransport("http://127.0.0.1:9", retry=_FAST_RETRY)
    with pytest.raises(TransportError):
        transport.call("ping", {})
