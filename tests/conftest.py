"""Shared fixtures: fast simulator builders and canonical configs.

Also registers hypothesis profiles.  CI exports
``HYPOTHESIS_PROFILE=ci`` to get a pinned, derandomized profile (fixed
seed derivation, no deadline) so property tests cannot flake on slow
shared runners; locally the default profile keeps random exploration.
"""

from __future__ import annotations

import os
import sys

import pytest
from hypothesis import HealthCheck, settings

sys.path.insert(0, os.path.dirname(__file__))

from helpers import build_simulator  # noqa: E402
from repro.network.config import SimulationConfig  # noqa: E402
from repro.topologies.registry import TOPOLOGY_NAMES  # noqa: E402

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def fast_config() -> SimulationConfig:
    """Short-frame config used by most engine tests."""
    return SimulationConfig(frame_cycles=2000, seed=7)


@pytest.fixture(params=TOPOLOGY_NAMES)
def topology_name(request) -> str:
    """Parametrises a test across all five shared-region topologies."""
    return request.param


@pytest.fixture
def make_simulator():
    """Fixture wrapper around :func:`build_simulator`."""
    return build_simulator
