"""CLI wiring of the resilience flags, chaos verbs and repro doctor."""

import json

from repro.cli import _cache, _executor, _fault_injector, build_parser, main
from repro.network.config import SimulationConfig
from repro.resilience import FaultPlan
from repro.runtime.cache import ResultCache
from repro.runtime.executor import ParallelExecutor, SerialExecutor
from repro.runtime.spec import RunSpec, execute_spec

_CFG = SimulationConfig(frame_cycles=2000, seed=4)


def _args(*argv):
    return build_parser().parse_args(["fig3", *argv])


def test_resilience_flag_defaults():
    args = _args()
    assert args.retries is None
    assert args.timeout is None
    assert args.chaos is None


def test_invalid_resilience_flags_exit_2(capsys):
    assert main(["fig3", "--retries", "-1"]) == 2
    assert "--retries" in capsys.readouterr().err
    assert main(["fig3", "--timeout", "0"]) == 2
    assert "--timeout" in capsys.readouterr().err


def test_retries_and_timeout_configure_the_parallel_executor():
    ex = _executor(_args("--jobs", "2", "--retries", "2", "--timeout", "1.5"))
    assert isinstance(ex, ParallelExecutor)
    assert ex.retry.max_attempts == 3  # 2 retries = 3 total attempts
    assert ex.timeout == 1.5
    # --jobs 1 stays the honest serial baseline: supervision is inert.
    assert isinstance(
        _executor(_args("--retries", "2", "--timeout", "1.5")), SerialExecutor
    )


def test_chaos_flag_threads_one_injector_through_executor_and_cache(tmp_path):
    args = _args("--jobs", "2", "--chaos", "smoke",
                 "--cache-dir", str(tmp_path))
    injector = _fault_injector(args)
    assert injector is not None and injector.plan.name == "smoke"
    assert _fault_injector(args) is injector  # one injector per command
    assert _executor(args).fault_plan is injector.plan
    assert _cache(args).put_hook == injector.on_cache_put
    assert _fault_injector(_args()) is None


def test_chaos_plan_prints_round_trippable_json(capsys):
    assert main(["chaos", "plan", "smoke"]) == 0
    plan = FaultPlan.from_json(json.loads(capsys.readouterr().out))
    assert plan.name == "smoke" and plan.faults


def test_chaos_plan_list_and_unknown_plan(capsys):
    assert main(["chaos", "plan", "list"]) == 0
    out = capsys.readouterr().out
    assert "smoke:" in out and "none:" in out
    assert main(["chaos", "plan", "no-such-plan"]) == 2
    assert "no-such-plan" in capsys.readouterr().err
    assert main(["chaos", "bogus"]) == 2


def test_chaos_plan_from_file(tmp_path, capsys):
    from repro.resilience import Fault

    custom = FaultPlan(name="mine", faults=(Fault(kind="spec_error", at=1),))
    path = tmp_path / "plan.json"
    path.write_text(custom.dumps(), encoding="utf-8")
    assert main(["chaos", "plan", str(path)]) == 0
    assert FaultPlan.from_json(json.loads(capsys.readouterr().out)) == custom


def _seeded_cache(root, corrupt: bool):
    cache = ResultCache(root)
    for rate in (0.04, 0.06):
        spec = RunSpec(topology="mesh_x1", workload="uniform", rate=rate,
                       config=_CFG, cycles=400, warmup=100)
        cache.put(spec, execute_spec(spec))
    if corrupt:
        blob = sorted(cache.version_dir.glob("*/*.json"))[0]
        blob.write_bytes(b"bitrot")
    return cache


def test_doctor_quarantines_and_reports(tmp_path, capsys):
    _seeded_cache(tmp_path, corrupt=True)
    assert main(["doctor", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "1 quarantined" in out and "quarantine holds 1 blob(s)" in out
    # --check keeps failing while the quarantine holds evidence.
    assert main(["doctor", "--cache-dir", str(tmp_path), "--check"]) == 1
    assert "--check" in capsys.readouterr().err


def test_doctor_check_passes_on_a_healthy_cache(tmp_path, capsys):
    _seeded_cache(tmp_path, corrupt=False)
    assert main(["doctor", "--cache-dir", str(tmp_path), "--check"]) == 0
    assert "cache is healthy" in capsys.readouterr().out


def test_list_advertises_the_new_verbs(capsys):
    main(["list"])
    out = capsys.readouterr().out
    assert "chaos" in out and "doctor" in out
