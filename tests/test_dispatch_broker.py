"""Broker lease semantics: expiry, idempotent ingestion, digest checks."""

import json

import pytest

from repro.dispatch import Broker, ManualClock, spec_hash_of
from repro.errors import DispatchError
from repro.network.config import SimulationConfig
from repro.resilience.policy import RetryPolicy
from repro.runtime.cache import payload_sha256
from repro.runtime.spec import RunSpec

_CFG = SimulationConfig(frame_cycles=2000, seed=4)


def _specs(count=1, cycles=200):
    return [
        RunSpec(topology="mesh_x1", workload="uniform",
                rate=0.03 + 0.01 * index, config=_CFG,
                cycles=cycles, warmup=cycles // 4)
        for index in range(count)
    ]


def _broker(**kwargs):
    kwargs.setdefault("clock", ManualClock())
    kwargs.setdefault("lease_seconds", 10.0)
    return Broker(**kwargs)


def _submit(broker, specs):
    return broker.handle(
        "submit",
        {"specs": [{"spec": s.to_json(), "label": s.label()} for s in specs]},
    )


def _ok_payload(spec_hash, lease):
    """A verifiable completion without running a simulation."""
    result = {"spec_hash": spec_hash, "rows": [1, 2, 3]}
    return {
        "spec_hash": spec_hash,
        "lease": lease,
        "status": "ok",
        "result": result,
        "payload_sha256": payload_sha256(result),
    }


def test_spec_hash_of_matches_runspec_content_hash():
    spec = _specs()[0]
    assert spec_hash_of(spec.to_json()) == spec.content_hash


def test_submit_is_idempotent_on_content_hash():
    broker = _broker()
    specs = _specs(2)
    first = _submit(broker, specs)
    assert (first["accepted"], first["known"]) == (2, 0)
    second = _submit(broker, specs)
    assert (second["accepted"], second["known"]) == (0, 2)
    assert broker.counters["submitted"] == 2


def test_claim_heartbeat_complete_roundtrip():
    broker = _broker()
    spec = _specs()[0]
    _submit(broker, [spec])
    task = broker.handle("claim", {"worker": "w0"})["task"]
    assert task["spec_hash"] == spec.content_hash
    assert task["attempt"] == 0
    assert broker.handle(
        "heartbeat", {"spec_hash": task["spec_hash"], "lease": task["lease"]}
    )["ok"]
    done = broker.handle(
        "complete", _ok_payload(task["spec_hash"], task["lease"])
    )
    assert done == {"ok": True}
    response = broker.handle("results", {"hashes": [spec.content_hash]})
    assert response["pending"] == 0
    assert response["results"][0]["spec_hash"] == spec.content_hash
    assert broker.counters["completions"] == 1
    assert broker.handle("status", {})["counts"]["done"] == 1


def test_expired_lease_is_requeued_exactly_once():
    broker = _broker()
    spec = _specs()[0]
    _submit(broker, [spec])
    task = broker.handle("claim", {"worker": "w0"})["task"]
    broker.clock.advance(11.0)
    broker.handle("status", {})  # any call runs the lazy expirer
    assert broker.counters["leases_expired"] == 1
    assert broker.counters["requeues"] == 1
    broker.handle("status", {})  # a requeued task cannot expire again
    assert broker.counters["leases_expired"] == 1
    reclaimed = broker.handle("claim", {"worker": "w1"})["task"]
    assert reclaimed["spec_hash"] == task["spec_hash"]
    assert reclaimed["lease"] != task["lease"]
    assert reclaimed["lease_index"] == task["lease_index"] + 1


def test_heartbeat_extends_the_lease():
    broker = _broker()
    _submit(broker, _specs())
    task = broker.handle("claim", {"worker": "w0"})["task"]
    broker.clock.advance(8.0)
    assert broker.handle(
        "heartbeat", {"spec_hash": task["spec_hash"], "lease": task["lease"]}
    )["ok"]
    broker.clock.advance(8.0)  # 16s total, but the deadline moved
    assert broker.handle("claim", {"worker": "w1"})["task"] is None
    assert broker.counters["leases_expired"] == 0


def test_heartbeat_on_a_lost_lease_tells_the_worker_to_abandon():
    broker = _broker()
    _submit(broker, _specs())
    task = broker.handle("claim", {"worker": "w0"})["task"]
    broker.clock.advance(11.0)
    beat = broker.handle(
        "heartbeat", {"spec_hash": task["spec_hash"], "lease": task["lease"]}
    )
    assert beat == {"ok": False}


def test_duplicate_completion_is_a_counted_noop():
    broker = _broker()
    _submit(broker, _specs())
    task = broker.handle("claim", {"worker": "w0"})["task"]
    payload = _ok_payload(task["spec_hash"], task["lease"])
    assert broker.handle("complete", payload) == {"ok": True}
    again = broker.handle("complete", payload)
    assert again == {"ok": True, "duplicate": True}
    assert broker.counters["duplicate_results"] == 1
    assert broker.counters["completions"] == 1


def test_mangled_payload_is_rejected_and_the_task_requeued():
    broker = _broker()
    _submit(broker, _specs())
    task = broker.handle("claim", {"worker": "w0"})["task"]
    payload = _ok_payload(task["spec_hash"], task["lease"])
    payload["result"]["rows"] = [9]  # flips a bit after sealing
    rejected = broker.handle("complete", payload)
    assert rejected == {"ok": False, "rejected": True}
    assert broker.counters["rejected_results"] == 1
    # The work is recoverable: reclaim and complete verifiably.
    task = broker.handle("claim", {"worker": "w1"})["task"]
    assert broker.handle(
        "complete", _ok_payload(task["spec_hash"], task["lease"])
    ) == {"ok": True}


def test_result_for_the_wrong_spec_hash_is_rejected():
    broker = _broker()
    specs = _specs(2)
    _submit(broker, specs)
    task = broker.handle("claim", {"worker": "w0"})["task"]
    other = specs[1].content_hash
    payload = _ok_payload(other, task["lease"])
    payload["spec_hash"] = task["spec_hash"]  # addressed to the wrong task
    assert broker.handle("complete", payload)["rejected"]


def test_stale_but_verified_completion_is_accepted():
    broker = _broker()
    _submit(broker, _specs())
    task = broker.handle("claim", {"worker": "w0"})["task"]
    broker.clock.advance(11.0)  # the lease will expire on the next call
    done = broker.handle(
        "complete", _ok_payload(task["spec_hash"], task["lease"])
    )
    assert done == {"ok": True}
    assert broker.counters["stale_completions"] == 1
    assert broker.counters["completions"] == 1
    assert broker.handle("status", {})["queue_depth"] == 0


def test_error_completions_consume_the_retry_budget_then_fail():
    broker = _broker(
        retry=RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0)
    )
    spec = _specs()[0]
    _submit(broker, [spec])
    task = broker.handle("claim", {"worker": "w0"})["task"]
    first = broker.handle(
        "complete",
        {"spec_hash": task["spec_hash"], "lease": task["lease"],
         "status": "error", "kind": "error", "detail": "boom"},
    )
    assert first == {"ok": True, "requeued": True}
    task = broker.handle("claim", {"worker": "w1"})["task"]
    assert task["attempt"] == 1
    second = broker.handle(
        "complete",
        {"spec_hash": task["spec_hash"], "lease": task["lease"],
         "status": "error", "kind": "error", "detail": "boom"},
    )
    assert second == {"ok": True, "failed": True}
    assert broker.counters["task_retries"] == 1
    assert broker.counters["failed_tasks"] == 1
    response = broker.handle("results", {"hashes": [spec.content_hash]})
    [failure] = response["failures"]
    assert failure["kind"] == "error" and not failure["retried"]


def test_unknown_op_and_unknown_completion_raise_dispatch_error():
    broker = _broker()
    with pytest.raises(DispatchError):
        broker.handle("bogus", {})
    with pytest.raises(DispatchError):
        broker.handle("complete", {"spec_hash": "deadbeef"})


def test_artifact_dir_persists_sha_addressed_results(tmp_path):
    broker = _broker(artifact_dir=tmp_path / "store")
    _submit(broker, _specs())
    task = broker.handle("claim", {"worker": "w0"})["task"]
    payload = _ok_payload(task["spec_hash"], task["lease"])
    broker.handle("complete", payload)
    blob = json.loads(
        (tmp_path / "store" / f"{task['spec_hash']}.json").read_text()
    )
    assert blob["payload_sha256"] == payload["payload_sha256"]
    assert payload_sha256(blob["result"]) == blob["payload_sha256"]
