"""Runtime telemetry: executor wrapping, heartbeats, campaign rollups."""

import json

from repro.campaign import CampaignSpec, StageSpec, run_campaign
from repro.network.config import SimulationConfig
from repro.obs import (
    TELEMETRY_FORMAT,
    TELEMETRY_VERSION,
    TelemetryExecutor,
    heartbeat_printer,
    write_runtime_telemetry,
)
from repro.runtime.executor import SerialExecutor
from repro.runtime.runner import run_batch
from repro.runtime.spec import RunSpec


def tiny_specs(n=3):
    return [
        RunSpec(topology="mesh_x1", workload="uniform", rate=0.02 + 0.01 * i,
                config=SimulationConfig(frame_cycles=500, seed=2), cycles=400)
        for i in range(n)
    ]


def test_wrapped_executor_is_pass_through():
    specs = tiny_specs()
    bare = run_batch(specs, executor=SerialExecutor(), cache=None)
    wrapper = TelemetryExecutor(SerialExecutor())
    wrapped = run_batch(specs, executor=wrapper, cache=None)
    assert wrapped.results == bare.results
    assert wrapper.describe() == "telemetry(serial)"
    assert wrapper.jobs == 1


def test_snapshot_totals_and_completion_log():
    wrapper = TelemetryExecutor(SerialExecutor())
    run_batch(tiny_specs(2), executor=wrapper, cache=None)
    run_batch(tiny_specs(3), executor=wrapper, cache=None)
    snapshot = wrapper.snapshot()
    assert snapshot["totals"]["batches"] == 2
    assert snapshot["totals"]["specs"] == 5
    assert snapshot["totals"]["simulated"] == 5
    assert snapshot["totals"]["cache_hits"] == 0
    assert [c["batch"] for c in snapshot["completions"]] == [0, 0, 1, 1, 1]
    assert all(c["at_seconds"] >= 0 for c in snapshot["completions"])
    labels = {c["label"] for c in snapshot["completions"]}
    assert len(labels) == 3  # batch 2 repeats batch 1's two specs


def test_telemetry_progress_still_forwarded():
    seen = []
    wrapper = TelemetryExecutor(SerialExecutor())
    run_batch(
        tiny_specs(2), executor=wrapper, cache=None,
        progress=lambda done, total, spec, cached:
            seen.append((done, total, cached)),
    )
    assert seen == [(1, 2, False), (2, 2, False)]


def test_write_runtime_telemetry_document(tmp_path):
    wrapper = TelemetryExecutor(SerialExecutor())
    run_batch(tiny_specs(1), executor=wrapper, cache=None)
    path = tmp_path / "nested" / "telemetry.json"
    write_runtime_telemetry(path, wrapper.snapshot(), meta={"target": "t"})
    document = json.loads(path.read_text())
    assert document["format"] == TELEMETRY_FORMAT
    assert document["version"] == TELEMETRY_VERSION
    assert document["meta"] == {"target": "t"}
    assert document["totals"]["specs"] == 1


def test_heartbeat_prints_every_spec_by_default():
    lines = []
    heartbeat = heartbeat_printer(emit=lines.append)
    heartbeat("sat", 1, 3, "a", False)
    heartbeat("sat", 2, 3, "b", True)
    heartbeat("sat", 3, 3, "c", False)
    assert lines[:3] == [
        "      [sat] 1/3   sim  a",
        "      [sat] 2/3 cache  b",
        "      [sat] 3/3   sim  c",
    ]
    # The terminal heartbeat additionally flushes the stage summary.
    assert len(lines) == 4
    assert lines[3].startswith("      [sat] done: 2 sim + 1 cache in ")


def test_heartbeat_rate_cap_always_prints_final():
    lines = []
    heartbeat = heartbeat_printer(emit=lines.append,
                                  min_interval_seconds=3600.0)
    heartbeat("sat", 1, 3, "a", False)  # first: interval satisfied at t=0
    heartbeat("sat", 2, 3, "b", False)  # capped
    heartbeat("sat", 3, 3, "c", False)  # final always prints
    assert [line.split("]")[1].strip() for line in lines[:2]] == [
        "1/3   sim  a", "3/3   sim  c",
    ]
    # The summary counts every spec, including the rate-capped one.
    assert lines[2].startswith("      [sat] done: 3 sim + 0 cache in ")


def test_heartbeat_summary_tracks_stages_independently():
    lines = []
    heartbeat = heartbeat_printer(emit=lines.append)
    heartbeat("alpha", 1, 2, "a", False)
    heartbeat("beta", 1, 1, "b", True)   # beta finishes mid-alpha
    heartbeat("alpha", 2, 2, "c", True)
    summaries = [line for line in lines if "done:" in line]
    assert summaries[0].startswith("      [beta] done: 0 sim + 1 cache")
    assert summaries[1].startswith("      [alpha] done: 1 sim + 1 cache")


def test_campaign_heartbeat_and_manifest_telemetry(tmp_path):
    campaign = CampaignSpec(
        name="tiny",
        description="test campaign",
        stages=(
            StageSpec("area", "fig3"),
            StageSpec(
                "sat", "saturation",
                params={"cycles": 300, "topology_names": ["mesh_x1"]},
                depends_on=("area",),
            ),
        ),
    )
    beats = []
    result = run_campaign(
        campaign, campaign_dir=tmp_path / "c",
        heartbeat=lambda stage, done, total, label, cached:
            beats.append((stage, done, total, cached)),
    )
    assert result.complete
    # The analytical stage runs no specs; the simulated stage beats once
    # per spec and ends on total/total.
    stages = {stage for stage, *_ in beats}
    assert stages == {"sat"}
    done, total = beats[-1][1], beats[-1][2]
    assert done == total == len(beats)
    manifest = json.loads((tmp_path / "c" / "manifest.json").read_text())
    telemetry = manifest["telemetry"]
    assert telemetry["executor"] == "serial"
    assert telemetry["specs"] == len(beats)
    assert telemetry["simulated"] + telemetry["cache_hits"] == len(beats)
    assert telemetry["wall_seconds"] > 0
    assert set(telemetry["stages"]) == {"area", "sat"}
    assert telemetry["stages"]["sat"]["specs"] == len(beats)
    assert telemetry["stages"]["area"]["status"] == "complete"
