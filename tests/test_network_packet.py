"""FlowSpec validation and Packet lifecycle."""

import pytest

from repro.errors import TrafficError
from repro.network.packet import (
    ALL_INJECTOR_PORTS,
    DEFAULT_SIZE_MIX,
    FlowSpec,
    Packet,
)


def test_injector_port_inventory():
    # 1 terminal + 4 east + 3 west = the 8 injectors per router.
    assert len(ALL_INJECTOR_PORTS) == 8


def test_default_size_mix_is_paper_mix():
    sizes = {size for size, _ in DEFAULT_SIZE_MIX}
    assert sizes == {1, 4}  # request/reply classes (Table 1)


def test_flow_spec_mean_packet_size():
    spec = FlowSpec(node=0, size_mix=((1, 0.5), (4, 0.5)))
    assert spec.mean_packet_size == 2.5


def test_flow_spec_rejects_unknown_port():
    with pytest.raises(TrafficError):
        FlowSpec(node=0, port="north0")


def test_flow_spec_rejects_negative_rate():
    with pytest.raises(TrafficError):
        FlowSpec(node=0, rate=-0.1)


def test_flow_spec_rejects_nonpositive_weight():
    with pytest.raises(TrafficError):
        FlowSpec(node=0, weight=0.0)


def test_flow_spec_rejects_bad_size_mix():
    with pytest.raises(TrafficError):
        FlowSpec(node=0, size_mix=((1, 0.4), (4, 0.4)))
    with pytest.raises(TrafficError):
        FlowSpec(node=0, size_mix=((0, 1.0),))


def test_flow_spec_rejects_negative_packet_limit():
    with pytest.raises(TrafficError):
        FlowSpec(node=0, packet_limit=-1)


def test_packet_replay_reset():
    packet = Packet(pid=1, flow_id=2, src=3, dst=0, size=4, created_at=100)
    packet.stations = (5, 6, 7)
    packet.segments = ((1, 1, 1, 6), (2, 1, 1, 7), (3, 0, 0, -1))
    packet.hop_index = 2
    packet.tiles_done = 2
    packet.reset_for_replay()
    assert packet.attempt == 1
    assert packet.hop_index == 0
    assert packet.tiles_done == 0
    assert packet.stations == ()
    # Identity and creation time survive the replay (latency is measured
    # from first injection).
    assert packet.created_at == 100
    assert packet.pid == 1


def test_packet_current_accessors():
    packet = Packet(pid=1, flow_id=0, src=0, dst=2, size=1, created_at=0)
    packet.stations = (10, 11)
    packet.segments = ((4, 1, 1, 11), (5, 0, 0, -1))
    assert packet.current_station() == 10
    assert packet.current_segment() == (4, 1, 1, 11)
    packet.hop_index = 1
    assert packet.current_station() == 11
