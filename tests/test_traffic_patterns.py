"""Destination patterns over the 8-node column."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TrafficError
from repro.traffic.patterns import (
    bit_reversal,
    hotspot,
    nearest_neighbor,
    tornado,
    uniform_random,
)
from repro.util.rng import DeterministicRng

nodes = st.integers(min_value=0, max_value=7)


@given(nodes, st.integers(0, 2**30))
def test_uniform_random_never_self(src, seed):
    rng = DeterministicRng(seed)
    dst = uniform_random(src, rng)
    assert 0 <= dst <= 7
    assert dst != src


def test_uniform_random_covers_all_destinations():
    rng = DeterministicRng(1)
    seen = {uniform_random(3, rng) for _ in range(500)}
    assert seen == {0, 1, 2, 4, 5, 6, 7}


@given(nodes)
def test_tornado_is_half_way_permutation(src):
    assert tornado(src, None) == (src + 4) % 8


def test_tornado_is_a_permutation():
    assert sorted(tornado(s, None) for s in range(8)) == list(range(8))


@given(nodes, nodes)
def test_hotspot_targets_fixed_node(target, src):
    pattern = hotspot(target)
    assert pattern(src, None) == target


def test_hotspot_rejects_out_of_range():
    with pytest.raises(TrafficError):
        hotspot(8)
    with pytest.raises(TrafficError):
        hotspot(-1)


@given(nodes, st.integers(0, 2**30))
def test_nearest_neighbor_is_adjacent(src, seed):
    rng = DeterministicRng(seed)
    dst = nearest_neighbor(src, rng)
    assert abs(dst - src) == 1
    assert 0 <= dst <= 7


@given(nodes, st.integers(0, 2**30))
def test_bit_reversal_in_range_and_never_self(src, seed):
    rng = DeterministicRng(seed)
    dst = bit_reversal(src, rng)
    assert 0 <= dst <= 7
    assert dst != src


def test_bit_reversal_known_values():
    rng = DeterministicRng(0)
    assert bit_reversal(1, rng) == 4  # 001 -> 100
    assert bit_reversal(3, rng) == 6  # 011 -> 110


@pytest.mark.parametrize(
    "pattern", [uniform_random, tornado, nearest_neighbor, bit_reversal]
)
@pytest.mark.parametrize("src", [-1, 8, 64])
def test_patterns_reject_out_of_column_sources(pattern, src):
    """A bad source must raise, not silently corrupt the destination.

    Before the bounds check, bit_reversal(8) returned node 1 (a 4-bit
    reversal of a "3-bit" source) and tornado(-1) wrapped around — both
    would have been baked into bogus routes.
    """
    rng = DeterministicRng(0)
    with pytest.raises(TrafficError):
        pattern(src, rng)
