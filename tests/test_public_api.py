"""Public API surface: imports, __all__, and the README quickstart."""

import repro


def test_version():
    assert repro.__version__ == "1.10.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_snippet_runs():
    # The exact flow documented in the package docstring / README.
    from repro import ColumnSimulator, PvcPolicy, SimulationConfig
    from repro import get_topology, uniform_workload

    topology = get_topology("dps")
    config = SimulationConfig(frame_cycles=10_000)
    sim = ColumnSimulator(
        topology.build(config), uniform_workload(0.05), PvcPolicy(), config
    )
    stats = sim.run(2_000, warmup=500)
    assert stats.mean_latency > 0


def test_system_snippet_runs():
    from repro import TopologyAwareSystem

    system = TopologyAwareSystem()
    system.admit_vm("web", n_threads=24, weight=2.0)
    system.admit_vm("db", n_threads=16, weight=3.0)
    assert system.audit_isolation() == []


def test_experiment_modules_importable():
    from repro.analysis import experiments

    for name in experiments.__all__:
        assert hasattr(experiments, name)
