"""Campaign runner: artifact store, manifest lifecycle, reuse, failure."""

import json

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    StageSpec,
    run_campaign,
    stage_digests,
    update_baseline,
)
from repro.campaign.spec import canonical_artifact_bytes, sha256_bytes
from repro.errors import CampaignError
from repro.runtime.executor import SerialExecutor


def tiny_campaign(**kwargs):
    """Two instant analytical stages plus one short simulated stage."""
    return CampaignSpec(
        name="tiny",
        description="test campaign",
        stages=(
            StageSpec("area", "fig3"),
            StageSpec(
                "sat",
                "saturation",
                params={"cycles": 300, "topology_names": ["mesh_x1"]},
                depends_on=("area",),
            ),
        ),
        **kwargs,
    )


class SpyExecutor(SerialExecutor):
    """Counts batches and specs so tests can assert zero re-execution."""

    def __init__(self):
        self.batches = 0
        self.specs_seen = []

    def run(self, specs, *, cache=None, progress=None):
        self.batches += 1
        self.specs_seen.extend(specs)
        return super().run(specs, cache=cache, progress=progress)


def test_run_produces_manifest_artifacts_and_report(tmp_path):
    result = run_campaign(
        tiny_campaign(),
        campaign_dir=tmp_path / "c",
        baseline_path=tmp_path / "b.json",
    )
    assert result.executed_stages == ["area", "sat"]
    assert result.complete
    manifest = json.loads((tmp_path / "c" / "manifest.json").read_text())
    assert manifest["campaign"] == "tiny"
    assert set(manifest["stages"]) == {"area", "sat"}
    for name in ("area", "sat"):
        entry = manifest["stages"][name]
        assert entry["status"] == "complete"
        blob = (tmp_path / "c" / "artifacts" / f"{name}.json").read_bytes()
        assert sha256_bytes(blob) == entry["artifact_sha256"]
        payload = json.loads(blob)
        assert payload["stage"] == name
        assert payload["rows"]
    assert (tmp_path / "c" / "report.json").exists()
    assert (tmp_path / "c" / "report.md").exists()


def test_artifact_bytes_are_canonical():
    payload = {"b": 1, "a": [1.5, None, True]}
    data = canonical_artifact_bytes(payload)
    assert data == canonical_artifact_bytes(dict(reversed(payload.items())))
    assert data.endswith(b"\n")


def test_second_run_reuses_every_stage(tmp_path):
    campaign = tiny_campaign()
    first = run_campaign(campaign, campaign_dir=tmp_path / "c")
    spy = SpyExecutor()
    second = run_campaign(campaign, campaign_dir=tmp_path / "c", executor=spy)
    assert second.reused_stages == ["area", "sat"]
    assert second.executed_stages == []
    assert spy.batches == 0
    assert stage_digests(second.manifest) == stage_digests(first.manifest)


def test_shard_records_compiled_spec_hashes(tmp_path):
    result = run_campaign(tiny_campaign(), campaign_dir=tmp_path / "c")
    shard = result.manifest["stages"]["sat"]["shards"][0]
    # 2 patterns x 1 topology.
    assert len(shard["spec_hashes"]) == 2
    assert shard["simulated"] + shard["cache_hits"] == 2
    assert all(len(h) == 64 for h in shard["spec_hashes"])


def test_stage_hash_change_resets_only_that_stage(tmp_path):
    run_campaign(tiny_campaign(), campaign_dir=tmp_path / "c")
    changed = CampaignSpec(
        name="tiny",
        description="test campaign",
        stages=(
            StageSpec("area", "fig3"),
            StageSpec(
                "sat",
                "saturation",
                params={"cycles": 350, "topology_names": ["mesh_x1"]},
                depends_on=("area",),
            ),
        ),
    )
    spy = SpyExecutor()
    result = run_campaign(changed, campaign_dir=tmp_path / "c", executor=spy)
    assert result.reused_stages == ["area"]
    assert result.executed_stages == ["sat"]
    assert spy.batches > 0


def test_manifest_campaign_name_mismatch_rejected(tmp_path):
    run_campaign(tiny_campaign(), campaign_dir=tmp_path / "c")
    other = CampaignSpec(
        name="other", description="x", stages=(StageSpec("area", "fig3"),)
    )
    with pytest.raises(CampaignError, match="belongs to campaign"):
        run_campaign(other, campaign_dir=tmp_path / "c")


def test_resume_without_manifest_refuses(tmp_path):
    with pytest.raises(CampaignError, match="nothing to resume"):
        run_campaign(
            tiny_campaign(), campaign_dir=tmp_path / "c", require_manifest=True
        )


def test_failed_stage_blocks_dependents_and_is_reported(tmp_path):
    campaign = CampaignSpec(
        name="failing",
        description="x",
        stages=(
            StageSpec("boom", "saturation", params={"cycles": -5}),
            StageSpec("after", "fig3", depends_on=("boom",)),
            StageSpec("independent", "fig7"),
        ),
    )
    result = run_campaign(campaign, campaign_dir=tmp_path / "c")
    assert result.failed_stages == ["boom"]
    assert "independent" in result.executed_stages
    manifest = result.manifest
    assert manifest["stages"]["boom"]["status"] == "failed"
    assert "error" in manifest["stages"]["boom"]
    assert manifest["stages"]["after"]["status"] == "blocked"
    verdicts = {s.name: s.verdict for s in result.report.stages}
    assert verdicts["boom"] == "failed"
    assert verdicts["after"] == "blocked"
    assert result.report.overall == "fail"


def test_corrupted_artifact_forces_reexecution(tmp_path):
    campaign = tiny_campaign()
    run_campaign(campaign, campaign_dir=tmp_path / "c")
    artifact = tmp_path / "c" / "artifacts" / "sat.json"
    artifact.write_text("{}")
    spy = SpyExecutor()
    result = run_campaign(campaign, campaign_dir=tmp_path / "c", executor=spy)
    assert "sat" in result.executed_stages
    # The re-written artifact verifies again.
    entry = result.manifest["stages"]["sat"]
    assert sha256_bytes(artifact.read_bytes()) == entry["artifact_sha256"]


def test_baseline_entries_require_complete_campaign(tmp_path):
    campaign = CampaignSpec(
        name="failing",
        description="x",
        stages=(StageSpec("boom", "saturation", params={"cycles": -5}),),
    )
    run_campaign(campaign, campaign_dir=tmp_path / "c")
    runner = CampaignRunner(campaign, campaign_dir=tmp_path / "c")
    with pytest.raises(CampaignError, match="cannot record a baseline"):
        runner.baseline_entries()


def test_baseline_round_trip_gives_pass_verdicts(tmp_path):
    campaign = tiny_campaign()
    baseline = tmp_path / "b.json"
    run_campaign(campaign, campaign_dir=tmp_path / "c", baseline_path=baseline)
    runner = CampaignRunner(
        campaign, campaign_dir=tmp_path / "c", baseline_path=baseline
    )
    update_baseline(baseline, "tiny", runner.baseline_entries())
    report = runner.report()
    assert report.overall == "pass"
    assert all(stage.verdict == "pass" for stage in report.stages)
    # report.md reflects the new verdicts on disk.
    assert "PASS" in (tmp_path / "c" / "report.md").read_text()


def test_report_without_state_raises(tmp_path):
    runner = CampaignRunner(tiny_campaign(), campaign_dir=tmp_path / "nope")
    with pytest.raises(CampaignError, match="no campaign state"):
        runner.report()


def test_progress_callback_sees_lifecycle_events(tmp_path):
    events = []
    run_campaign(
        tiny_campaign(),
        campaign_dir=tmp_path / "c",
        progress=lambda stage, done, total, event: events.append((stage, event)),
    )
    assert ("area", "complete") in events
    assert ("sat", "shard") in events
    run_campaign(
        tiny_campaign(),
        campaign_dir=tmp_path / "c",
        progress=lambda stage, done, total, event: events.append((stage, event)),
    )
    assert ("sat", "reused") in events


def test_unknown_stage_param_fails_the_stage_not_the_campaign(tmp_path):
    campaign = CampaignSpec(
        name="typo",
        description="x",
        stages=(
            StageSpec("sat", "saturation", params={"cycless": 300}),
            StageSpec("ok", "fig3"),
        ),
    )
    result = run_campaign(campaign, campaign_dir=tmp_path / "c")
    assert result.failed_stages == ["sat"]
    assert result.executed_stages == ["ok"]
    assert "unknown stage params" in result.manifest["stages"]["sat"]["error"]
