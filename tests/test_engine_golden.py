"""Golden-equivalence suite: optimised engine == frozen reference.

The activity-tracked :class:`~repro.network.engine.ColumnSimulator`
skips idle cycles and idle components; these tests pin it to the
pre-optimisation engine preserved in :mod:`repro.network.golden` by
asserting **identical** :meth:`NetworkStats.snapshot` dumps (every
counter, per-flow vector, latency moment and preempted pid) — and, for
a preemption-heavy scenario, identical event traces — across a matrix
of topologies × QoS policies × injection rates, plus the window and
drain run modes.

Any intentional engine behaviour change must update golden.py in the
same commit; an unintentional divergence fails here first.
"""

import pytest

from repro.network.config import SimulationConfig
from repro.network.engine import ColumnSimulator
from repro.network.golden import GoldenColumnSimulator
from repro.network.trace import TraceRecorder
from repro.qos.registry import create_policy
from repro.scenarios import bursty_workload
from repro.topologies.registry import get_topology
from repro.traffic.workloads import (
    full_column_workload,
    uniform_workload,
    workload1,
    workload1_finite,
    workload2,
)

#: Low / high per-injector rates: the left edge of the latency curves
#: (mostly idle fabric, the cycle-skipping fast path) and a point past
#: saturation (dense fabric, the single-step fall-back path).
RATES = (0.02, 0.30)

TOPOLOGIES = ("mesh_x1", "mesh_x2", "mecs", "dps")


def _pair(topology, flows_factory, policy_name, config):
    """Build (optimised, golden) simulators over identical inputs."""
    sims = []
    for cls in (ColumnSimulator, GoldenColumnSimulator):
        build = get_topology(topology).build(config)
        sims.append(cls(build, flows_factory(), create_policy(policy_name), config))
    return sims


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("policy", ("pvc", "noqos"))
@pytest.mark.parametrize("rate", RATES)
def test_run_mode_matches_golden(topology, policy, rate):
    config = SimulationConfig(frame_cycles=1500, seed=5)
    cycles = 2500 if rate >= 0.1 else 4000
    optimised, golden = _pair(
        topology, lambda: full_column_workload(rate), policy, config
    )
    optimised.run(cycles, warmup=cycles // 4)
    golden.run(cycles, warmup=cycles // 4)
    assert optimised.stats.snapshot() == golden.stats.snapshot()
    assert optimised.cycle == golden.cycle


@pytest.mark.parametrize("topology", ("mesh_x1", "mecs", "dps"))
def test_perflow_policy_matches_golden(topology):
    # The per-flow baseline grows overflow VCs on demand — a different
    # buffering regime than the fixed-VC PVC/no-QoS paths.
    config = SimulationConfig(frame_cycles=1500, seed=5)
    optimised, golden = _pair(
        topology, lambda: uniform_workload(0.15), "perflow", config
    )
    optimised.run(3000)
    golden.run(3000)
    assert optimised.stats.snapshot() == golden.stats.snapshot()


def test_window_mode_matches_golden():
    config = SimulationConfig(frame_cycles=2000, seed=7)
    optimised, golden = _pair("dps", workload2, "pvc", config)
    optimised.run_window(500, 3000)
    golden.run_window(500, 3000)
    assert optimised.stats.snapshot() == golden.stats.snapshot()


def test_drain_mode_matches_golden_completion_cycle():
    config = SimulationConfig(frame_cycles=2000, seed=7)
    optimised, golden = _pair(
        "mecs", lambda: workload1_finite(duration=2000), "pvc", config
    )
    done_optimised = optimised.run_until_drained(max_cycles=60_000)
    done_golden = golden.run_until_drained(max_cycles=60_000)
    assert done_optimised == done_golden
    assert optimised.stats.snapshot() == golden.stats.snapshot()


def test_preemption_heavy_trace_matches_golden():
    # Workload 1 under a short frame and low patience maximises the
    # preemption/NACK/replay machinery; compare full event traces, not
    # just aggregate counters.
    config = SimulationConfig(
        frame_cycles=3000, seed=11, preemption_patience_cycles=4
    )
    optimised, golden = _pair("mesh_x2", workload1, "pvc", config)
    trace_optimised = TraceRecorder(capacity=200_000)
    trace_golden = TraceRecorder(capacity=200_000)
    trace_optimised.attach(optimised)
    trace_golden.attach(golden)
    optimised.run(5000)
    golden.run(5000)
    assert optimised.stats.preemption_events > 0  # the scenario bites
    assert optimised.stats.snapshot() == golden.stats.snapshot()
    assert list(trace_optimised.events) == list(trace_golden.events)


# --- GSF: the frame-throttling policy exercises the injection-release
# hook, which no other registered policy reaches.  Deferred ready_at
# values flow through both engines' admission paths (pending heap and
# port-scan wait horizons in the optimised engine, naive per-cycle
# checks in golden), so the matrix spans traffic shapes and both the
# open and drained run modes.

GSF_TOPOLOGIES = ("mesh_x1", "mecs", "fbfly")


def _gsf_flows(traffic, *, finite):
    limit = 40 if finite else None
    if traffic == "bernoulli":
        return full_column_workload(0.30, packet_limit=limit)
    return bursty_workload(0.45, on_cycles=40, off_cycles=120,
                           packet_limit=limit)


@pytest.mark.parametrize("topology", GSF_TOPOLOGIES)
@pytest.mark.parametrize("traffic", ("bernoulli", "bursty"))
def test_gsf_open_matches_golden(topology, traffic):
    # Short frames against a saturating offered load: most packets are
    # charged to future frames, so the throttling path dominates.
    config = SimulationConfig(frame_cycles=400, seed=9)
    optimised, golden = _pair(
        topology, lambda: _gsf_flows(traffic, finite=False), "gsf", config
    )
    optimised.run(3000, warmup=750)
    golden.run(3000, warmup=750)
    assert optimised.stats.snapshot() == golden.stats.snapshot()
    assert optimised.cycle == golden.cycle
    assert optimised.policy.deferral_count() > 0  # throttling active
    assert optimised.policy.deferral_count() == golden.policy.deferral_count()


@pytest.mark.parametrize("topology", GSF_TOPOLOGIES)
@pytest.mark.parametrize("traffic", ("bernoulli", "bursty"))
def test_gsf_drained_matches_golden(topology, traffic):
    # Finite flows + drain mode: the engines must agree on the cycle the
    # last frame-deferred packet finally lands, i.e. cycle skipping may
    # not jump over a future frame boundary holding admissible work.
    config = SimulationConfig(frame_cycles=400, seed=9)
    optimised, golden = _pair(
        topology, lambda: _gsf_flows(traffic, finite=True), "gsf", config
    )
    done_optimised = optimised.run_until_drained(max_cycles=80_000)
    done_golden = golden.run_until_drained(max_cycles=80_000)
    assert done_optimised == done_golden
    assert optimised.stats.snapshot() == golden.stats.snapshot()


def test_gsf_trace_matches_golden():
    # Event-level agreement, not just aggregate counters, under heavy
    # throttling: every injection, hop and delivery lands on the same
    # cycle in both engines.
    config = SimulationConfig(frame_cycles=300, seed=13)
    optimised, golden = _pair(
        "mecs", lambda: _gsf_flows("bursty", finite=False), "gsf", config
    )
    trace_optimised = TraceRecorder(capacity=200_000)
    trace_golden = TraceRecorder(capacity=200_000)
    trace_optimised.attach(optimised)
    trace_golden.attach(golden)
    optimised.run(4000)
    golden.run(4000)
    assert optimised.policy.deferral_count() > 0
    assert optimised.stats.snapshot() == golden.stats.snapshot()
    assert list(trace_optimised.events) == list(trace_golden.events)


def test_stepwise_runs_match_golden():
    # Chopping one simulation into many small run() calls (as the
    # window-probing tests do) must hit the same states as one big run:
    # cycle skipping may never overshoot a caller's bound.
    config = SimulationConfig(frame_cycles=1000, seed=3)
    optimised, golden = _pair(
        "mesh_x1", lambda: uniform_workload(0.05), "pvc", config
    )
    for chunk in (1, 7, 100, 333, 1, 2059):
        optimised.run(chunk)
        golden.run(chunk)
        assert optimised.cycle == golden.cycle
        assert optimised.stats.snapshot() == golden.stats.snapshot()
        assert all(
            optimised.injector_state(f) == golden.injector_state(f)
            for f in range(len(optimised.flows))
        )
