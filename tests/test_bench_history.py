"""Bench trend history and the dispatch journal-overhead guard."""

import json

import pytest

from repro.runtime.bench import (
    BENCH_ENGINE_FILENAME,
    BENCH_HISTORY_FILENAME,
    RUNTIME_BENCH_FILENAME,
    JournalOverheadResult,
    append_bench_history,
    bench_history_entry,
    flag_history_regressions,
    format_bench_history,
    format_journal_overhead,
    load_bench_history,
    record_journal_overhead,
    validate_runtime_baseline,
)


def _journal_result(off=0.5, on=0.52, equal=True):
    return JournalOverheadResult(
        jobs=2, batches=4, specs_per_batch=2,
        off_seconds=off, on_seconds=on, results_equal=equal,
    )


def _entry(version="1.9.0", **speedups):
    return {
        "engine_version": version,
        "recorded_utc": "2026-01-01T00:00:00Z",
        "speedups": speedups,
        "violations": [],
    }


# -- journal overhead section -----------------------------------------


def test_journal_overhead_ratios_and_formatting():
    result = _journal_result(off=0.5, on=0.6)
    assert result.speedup_off == pytest.approx(1.2)
    assert result.journal_overhead == pytest.approx(0.2)
    table = format_journal_overhead(result)
    assert "journaling off" in table and "identical" in table


def test_record_journal_overhead_round_trips(tmp_path):
    path = tmp_path / RUNTIME_BENCH_FILENAME
    path.write_text(json.dumps({"runtime_pool": {
        "results_equal": True, "pool_vs_spawn": 1.5,
        "parallel_vs_serial": 1.5, "dispatch_vs_serial": 0.9,
    }}))
    record_journal_overhead(_journal_result(), path)
    violations, data = validate_runtime_baseline(path)
    assert violations == []
    assert data["_journal"]["results_equal"] is True
    assert data["_journal"]["floor_speedup_off"] == 1.0


def test_journal_floor_and_divergence_are_violations(tmp_path):
    path = tmp_path / RUNTIME_BENCH_FILENAME
    path.write_text(json.dumps({"runtime_pool": {
        "results_equal": True, "pool_vs_spawn": 1.5,
        "parallel_vs_serial": 1.5, "dispatch_vs_serial": 0.9,
    }}))
    # Journal-off slower than journal-on: the disabled path costs time.
    record_journal_overhead(_journal_result(off=1.0, on=0.8, equal=False),
                            path)
    violations, _ = validate_runtime_baseline(path)
    assert any("journal-off speedup" in violation for violation in violations)
    assert any("perturbed results" in violation for violation in violations)


# -- trend history -----------------------------------------------------


def test_history_append_load_round_trip(tmp_path):
    path = tmp_path / BENCH_HISTORY_FILENAME
    assert load_bench_history(path) == []
    append_bench_history(path, _entry(fig4=1.5))
    append_bench_history(path, _entry(fig4=1.6))
    entries = load_bench_history(path)
    assert [e["speedups"]["fig4"] for e in entries] == [1.5, 1.6]


def test_history_rejects_corrupt_lines(tmp_path):
    path = tmp_path / BENCH_HISTORY_FILENAME
    append_bench_history(path, _entry(fig4=1.5))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"torn": tru\n')
    with pytest.raises(ValueError, match="line 2"):
        load_bench_history(path)
    path.write_text('{"no_speedups": 1}\n')
    with pytest.raises(ValueError, match="'speedups' mapping"):
        load_bench_history(path)


def test_trailing_window_flags_a_drop():
    entries = [_entry(fig4=1.5) for _ in range(4)] + [_entry(fig4=1.0)]
    flags = flag_history_regressions(entries, window=5, tolerance=0.9)
    assert len(flags) == 1 and "fig4" in flags[0]
    # Within tolerance: no flag.
    steady = [_entry(fig4=1.5) for _ in range(4)] + [_entry(fig4=1.4)]
    assert flag_history_regressions(steady, window=5, tolerance=0.9) == []
    # A single entry has no trailing window to compare against.
    assert flag_history_regressions([_entry(fig4=1.0)]) == []


def test_window_bounds_how_far_back_the_mean_reaches():
    # Ancient fast entries fall outside window=2; only the recent slow
    # ones set the expectation, so the latest value passes.
    entries = (
        [_entry(fig4=9.0)] * 5 + [_entry(fig4=1.0), _entry(fig4=1.0),
                                  _entry(fig4=0.95)]
    )
    assert flag_history_regressions(entries, window=2, tolerance=0.9) == []
    assert flag_history_regressions(entries, window=7, tolerance=0.9) != []


def test_metrics_missing_from_history_get_no_verdict():
    entries = [_entry(fig4=1.5), _entry(brand_new_metric=0.1)]
    assert flag_history_regressions(entries) == []


def test_format_history_lists_entries_and_flags():
    entries = [_entry(fig4=1.5), _entry(fig4=1.0)]
    flags = flag_history_regressions(entries)
    text = format_bench_history(entries, flags)
    assert "2 entries" in text
    assert "trend regressions" in text
    assert "1.9.0" in text


def test_history_entry_flattens_every_guarded_speedup(tmp_path):
    engine = tmp_path / BENCH_ENGINE_FILENAME
    engine.write_text(json.dumps({
        "fig4_point": {"speedup": 1.7, "stats_equal": True},
        "_obs": {"points": {"fig4_point": {
            "speedup_off": 2.0, "enabled_overhead": 0.2, "stats_equal": True,
        }}},
    }))
    runtime = tmp_path / RUNTIME_BENCH_FILENAME
    runtime.write_text(json.dumps({
        "runtime_pool": {
            "results_equal": True, "pool_vs_spawn": 1.5,
            "parallel_vs_serial": 1.5, "dispatch_vs_serial": 0.9,
        },
        "_journal": {
            "results_equal": True, "speedup_off": 1.01,
            "floor_speedup_off": 1.0,
        },
    }))
    entry = bench_history_entry(engine, runtime)
    assert entry["violations"] == []
    assert entry["speedups"] == {
        "fig4_point": 1.7,
        "obs:fig4_point": 2.0,
        "runtime:pool_vs_spawn": 1.5,
        "runtime:parallel_vs_serial": 1.5,
        "runtime:dispatch_vs_serial": 0.9,
        "journal:speedup_off": 1.01,
    }
    import repro

    assert entry["engine_version"] == repro.__version__


def test_committed_history_is_clean():
    """The committed trend history parses and flags no regressions."""
    entries = load_bench_history(BENCH_HISTORY_FILENAME)
    assert entries, "BENCH_history.jsonl must hold at least the seed entry"
    assert entries[-1]["violations"] == []
    assert flag_history_regressions(entries) == []
