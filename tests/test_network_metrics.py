"""NetworkStats accounting: windows, fractions, summaries."""

from repro.network.metrics import NetworkStats


def test_window_filtering():
    stats = NetworkStats(n_flows=2)
    stats.set_window(100, 200)
    stats.record_delivery(0, 4, 12.0, 50)    # before window
    stats.record_delivery(0, 4, 12.0, 150)   # inside
    stats.record_delivery(1, 1, 9.0, 250)    # after
    assert stats.window_flits_per_flow == [4, 0]
    assert stats.latency.count == 1
    # Global delivery counters are window-independent.
    assert stats.delivered_packets == 3
    assert stats.delivered_flits == 9


def test_preemption_fractions():
    stats = NetworkStats(n_flows=1)
    stats.created_packets = 10
    stats.record_preemption(3, wasted_tiles=2)
    stats.record_preemption(3, wasted_tiles=1)  # same packet again
    stats.record_hop("mesh", 1)
    stats.record_hop("mesh", 1)
    stats.record_hop("mesh", 1)
    assert stats.preemption_events == 2
    assert stats.preempted_packet_fraction == 0.2
    assert stats.wasted_tiles == 3
    assert stats.wasted_hop_fraction == 1.0  # 3 wasted / 3 total


def test_fractions_are_zero_when_empty():
    stats = NetworkStats(n_flows=1)
    assert stats.preempted_packet_fraction == 0.0
    assert stats.wasted_hop_fraction == 0.0
    assert stats.offered_accepted_ratio == 0.0
    assert stats.mean_latency == 0.0


def test_hops_by_kind_accumulates():
    stats = NetworkStats(n_flows=1)
    stats.record_hop("inject", 1)
    stats.record_hop("inject", 1)
    stats.record_hop("dps_mid", 1)
    assert stats.hops_by_kind["inject"] == 2
    assert stats.hops_by_kind["dps_mid"] == 1


def test_summary_keys():
    stats = NetworkStats(n_flows=1)
    summary = stats.summary()
    for key in (
        "created_packets",
        "delivered_packets",
        "mean_latency",
        "preemption_events",
        "wasted_hop_fraction",
        "replays",
    ):
        assert key in summary


def test_in_window_bounds():
    stats = NetworkStats(n_flows=1)
    stats.set_window(10, 20)
    assert not stats.in_window(9)
    assert stats.in_window(10)
    assert stats.in_window(19)
    assert not stats.in_window(20)
