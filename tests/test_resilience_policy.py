"""RetryPolicy, FailureRecord, FaultPlan and FaultInjector units."""

import json

import pytest

from repro.errors import ReproError
from repro.resilience import (
    Fault,
    FaultInjector,
    FaultPlan,
    FailureRecord,
    RetryPolicy,
    load_plan,
)
from repro.resilience.faults import BUILTIN_PLANS, FAULT_KINDS, InjectedFault

_HASH = "ab" * 32


# -- RetryPolicy -------------------------------------------------------


def test_delay_is_a_pure_function_of_seed_hash_and_attempt():
    a = RetryPolicy(seed=3)
    b = RetryPolicy(seed=3)
    assert a.delay(_HASH, 0) == b.delay(_HASH, 0)
    assert a.delay(_HASH, 2) == b.delay(_HASH, 2)
    assert RetryPolicy(seed=4).delay(_HASH, 0) != a.delay(_HASH, 0)
    assert a.delay("cd" * 32, 0) != a.delay(_HASH, 0)


def test_delay_respects_backoff_bounds():
    policy = RetryPolicy(
        backoff_base=0.05, backoff_factor=2.0, backoff_max=2.0, jitter=0.25
    )
    for attempt in range(9):
        capped = min(2.0, 0.05 * 2.0**attempt)
        delay = policy.delay(_HASH, attempt)
        assert capped <= delay <= capped * 1.25


def test_zero_jitter_gives_exact_exponential_backoff():
    policy = RetryPolicy(jitter=0.0)
    assert policy.delay(_HASH, 3) == pytest.approx(0.4)  # 0.05 * 2**3
    assert policy.delay(_HASH, 10) == pytest.approx(2.0)  # capped


def test_should_retry_counts_total_attempts():
    policy = RetryPolicy(max_attempts=3)
    assert policy.should_retry(0) and policy.should_retry(1)
    assert not policy.should_retry(2)
    assert not RetryPolicy(max_attempts=1).should_retry(0)


def test_policy_validation_and_round_trip():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base=-1.0)
    policy = RetryPolicy(max_attempts=5, seed=9, backoff_max=1.5)
    assert RetryPolicy.from_json(policy.to_json()) == policy


# -- FailureRecord -----------------------------------------------------


def test_failure_record_round_trip_and_describe():
    record = FailureRecord(
        spec_hash=_HASH, label="mesh_x1/uniform", kind="timeout",
        attempt=1, detail="over budget", retried=True,
    )
    assert FailureRecord.from_json(record.to_json()) == record
    assert "timeout" in record.describe() and "retried" in record.describe()
    permanent = FailureRecord(
        spec_hash=_HASH, label="x", kind="crash", attempt=2,
        detail="died", retried=False,
    )
    assert "permanent" in permanent.describe()
    with pytest.raises(ValueError):
        FailureRecord(spec_hash=_HASH, label="x", kind="flood",
                      attempt=0, detail="", retried=False)


# -- Fault / FaultPlan -------------------------------------------------


def test_fault_validation():
    with pytest.raises(ValueError):
        Fault(kind="meteor_strike", at=0)
    with pytest.raises(ValueError):
        Fault(kind="worker_kill", at=-1)
    with pytest.raises(ValueError):
        Fault(kind="spec_error", at=0, attempts=0)


def test_plan_round_trips_through_json():
    plan = FaultPlan(
        name="t", seed=5,
        faults=(Fault(kind="worker_hang", at=2, seconds=1.5),
                Fault(kind="corrupt_cache", at=0)),
        interrupt_after_shards=3,
    )
    assert FaultPlan.from_json(json.loads(plan.dumps())) == plan
    assert plan.without_interrupt().interrupt_after_shards is None
    assert plan.without_interrupt().faults == plan.faults
    assert [f.kind for f in plan.worker_faults()] == ["worker_hang"]


def test_builtin_smoke_plan_covers_every_fault_kind():
    kinds = {fault.kind for fault in BUILTIN_PLANS["smoke"].faults}
    assert kinds == set(FAULT_KINDS)
    assert BUILTIN_PLANS["smoke"].interrupt_after_shards is not None
    assert BUILTIN_PLANS["none"].faults == ()


def test_load_plan_by_name_file_and_failure(tmp_path):
    assert load_plan("smoke") is BUILTIN_PLANS["smoke"]
    custom = FaultPlan(name="mine", faults=(Fault(kind="spec_error", at=1),))
    path = tmp_path / "plan.json"
    path.write_text(custom.dumps(), encoding="utf-8")
    assert load_plan(str(path)) == custom
    with pytest.raises(ReproError):
        load_plan("no-such-plan")


# -- FaultInjector -----------------------------------------------------


def test_spec_error_fires_in_parent_and_respects_attempt_budget():
    plan = FaultPlan(faults=(Fault(kind="spec_error", at=0, attempts=1),))
    injector = FaultInjector(plan)
    with pytest.raises(InjectedFault):
        injector.fire_task_faults(0, 0)
    injector.fire_task_faults(0, 1)  # retry goes through clean
    injector.fire_task_faults(1, 0)  # other tasks untouched
    assert injector.summary() == {"spec_error": 1}


def test_kill_and_hang_only_ever_fire_inside_a_worker():
    plan = FaultPlan(faults=(
        Fault(kind="worker_kill", at=0),
        Fault(kind="worker_hang", at=1, seconds=30.0),
    ))
    injector = FaultInjector(plan, in_worker=False)
    injector.fire_task_faults(0, 0)  # must not SIGKILL the test process
    injector.fire_task_faults(1, 0)  # must not sleep 30s
    assert injector.fired == []


def test_adapter_error_keys_on_the_execution_counter():
    plan = FaultPlan(faults=(Fault(kind="adapter_error", at=1),))
    injector = FaultInjector(plan)
    injector.fire_adapter_error("a", 0, 0)  # execution 0: clean
    with pytest.raises(InjectedFault):
        injector.fire_adapter_error("b", 0, 0)  # execution 1: fires
    injector.fire_adapter_error("b", 0, 1)  # retry survives (attempts=1)
    injector.fire_adapter_error("c", 0, 0)  # execution 2: clean
    assert injector.summary() == {"adapter_error": 1}


def test_cache_put_fault_corrupts_only_the_matching_blob(tmp_path):
    plan = FaultPlan(faults=(Fault(kind="corrupt_cache", at=1),))
    injector = FaultInjector(plan)
    first, second = tmp_path / "a.json", tmp_path / "b.json"
    for path in (first, second):
        path.write_text('{"ok": true}', encoding="utf-8")
        injector.on_cache_put(path)
    assert json.loads(first.read_text()) == {"ok": True}
    assert second.read_bytes().startswith(b"\x00CORRUPT\x00")


def test_manifest_fault_tears_the_matching_save(tmp_path):
    plan = FaultPlan(faults=(Fault(kind="torn_manifest", at=0),))
    injector = FaultInjector(plan)
    manifest = tmp_path / "manifest.json"
    data = json.dumps({"stages": {"a": {"status": "complete"}}})
    manifest.write_text(data, encoding="utf-8")
    injector.on_manifest_save(manifest)
    torn = manifest.read_bytes()
    assert 0 < len(torn) < len(data)
    with pytest.raises(ValueError):
        json.loads(torn)


def test_stop_hook_fires_after_the_configured_checkpoint():
    assert FaultInjector(FaultPlan()).stop_hook() is None
    injector = FaultInjector(FaultPlan(interrupt_after_shards=2))
    hook = injector.stop_hook()
    assert hook("s", 0) is False
    assert hook("s", 1) is True
    assert injector.summary() == {"interrupt": 1}
