"""Scenario workloads through repro.runtime: hashing, caching, executors."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.network.config import SimulationConfig
from repro.network.engine import ColumnSimulator
from repro.network.trace import InjectionCapture
from repro.qos.pvc import PvcPolicy
from repro.runtime.cache import ResultCache
from repro.runtime.executor import ParallelExecutor, SerialExecutor
from repro.runtime.spec import (
    SCENARIO_WORKLOADS,
    WORKLOAD_BUILDERS,
    RunSpec,
    build_flows,
    execute_spec,
)
from repro.scenarios import bursty_workload, capture_to_trace, write_trace
from repro.topologies.registry import get_topology

CONFIG = SimulationConfig(frame_cycles=5000, seed=6)

PHASES = json.dumps(
    [{"cycles": 800, "rate": 0.05}, {"cycles": 800, "rate": 0.3}]
)


def scenario_specs():
    return [
        RunSpec(topology="mecs", workload="bursty", rate=0.3,
                workload_params={"on_cycles": 50, "off_cycles": 150},
                config=CONFIG, cycles=2000),
        RunSpec(topology="mecs", workload="pareto_bursty", rate=0.3,
                config=CONFIG, cycles=1500),
        RunSpec(topology="mesh_x1", workload="phased",
                workload_params={"phases": PHASES},
                config=CONFIG, cycles=1600),
        RunSpec(topology="mecs", workload="closed_loop",
                workload_params={"outstanding": 3, "think_cycles": 4},
                config=CONFIG, cycles=2000),
    ]


def test_scenario_workloads_are_registered():
    for name in SCENARIO_WORKLOADS:
        assert name in WORKLOAD_BUILDERS


def test_hashes_stable_across_param_order_and_json_round_trip():
    for spec in scenario_specs():
        reordered = RunSpec.from_json(spec.to_json())
        assert reordered.content_hash == spec.content_hash


def test_hashes_differ_by_scenario_parameters():
    base = RunSpec(topology="mecs", workload="bursty", rate=0.3,
                   workload_params={"on_cycles": 50}, config=CONFIG)
    other = RunSpec(topology="mecs", workload="bursty", rate=0.3,
                    workload_params={"on_cycles": 60}, config=CONFIG)
    assert base.content_hash != other.content_hash


def test_serial_and_parallel_execution_identical():
    specs = scenario_specs()
    serial = SerialExecutor().run(specs).results
    parallel = ParallelExecutor(jobs=2).run(specs).results
    assert list(serial) == list(parallel)


def test_results_cache_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    spec = scenario_specs()[0]
    first = SerialExecutor().run([spec], cache=cache).results[0]
    outcome = SerialExecutor().run([spec], cache=cache)
    assert outcome.simulated == 0 and outcome.cache_hits == 1
    assert outcome.results[0] == first


def test_same_seed_same_result_object():
    spec = scenario_specs()[0]
    assert execute_spec(spec) == execute_spec(spec)


def test_spec_validation_rejects_bad_scenarios():
    with pytest.raises(ConfigurationError):  # rate forbidden
        RunSpec(topology="mecs", workload="closed_loop", rate=0.1,
                config=CONFIG)
    with pytest.raises(ConfigurationError):  # rate required
        RunSpec(topology="mecs", workload="bursty", config=CONFIG)
    with pytest.raises(ConfigurationError):  # unknown param
        RunSpec(topology="mecs", workload="bursty", rate=0.1,
                workload_params={"burst": 1}, config=CONFIG)
    with pytest.raises(ConfigurationError):  # phases validated eagerly
        RunSpec(topology="mecs", workload="phased",
                workload_params={"phases": "not json"}, config=CONFIG)
    with pytest.raises(ConfigurationError):  # hotspot target bounds
        RunSpec(topology="mecs", workload="bursty", rate=0.1,
                workload_params={"target": 64}, config=CONFIG)
    with pytest.raises(ConfigurationError):  # pattern xor target
        RunSpec(topology="mecs", workload="bursty", rate=0.1,
                workload_params={"target": 0, "pattern": "tornado"},
                config=CONFIG)


def test_replay_spec_executes_and_caches(tmp_path):
    # Record a run, then execute it as a "replay" RunSpec through the
    # runtime: results must round-trip the cache and match a direct
    # re-simulation bit for bit.
    flows = bursty_workload(0.3, on_cycles=40, off_cycles=120)
    source = ColumnSimulator(
        get_topology("mecs").build(CONFIG), flows, PvcPolicy(), CONFIG
    )
    capture = InjectionCapture()
    capture.attach(source)
    source.run(1800, warmup=300)
    path = tmp_path / "trace.jsonl"
    digest = write_trace(path, capture_to_trace(capture, source.flows))

    spec = RunSpec(
        topology="mecs", workload="replay",
        workload_params={"path": str(path), "sha256": digest},
        config=CONFIG, cycles=1800, warmup=300,
    )
    result = execute_spec(spec)
    assert result.delivered_flits == source.stats.delivered_flits
    assert result.mean_latency == source.stats.mean_latency
    assert tuple(result.window_flits_per_flow) == tuple(
        source.stats.window_flits_per_flow
    )

    cache = ResultCache(tmp_path / "cache")
    SerialExecutor().run([spec], cache=cache)
    outcome = SerialExecutor().run([spec], cache=cache)
    assert outcome.cache_hits == 1 and outcome.results[0] == result


def test_replay_spec_digest_guard(tmp_path):
    flows = bursty_workload(0.3)
    source = ColumnSimulator(
        get_topology("mecs").build(CONFIG), flows, PvcPolicy(), CONFIG
    )
    capture = InjectionCapture()
    capture.attach(source)
    source.run(600)
    path = tmp_path / "trace.jsonl"
    write_trace(path, capture_to_trace(capture, source.flows))
    spec = RunSpec(
        topology="mecs", workload="replay",
        workload_params={"path": str(path), "sha256": "f" * 64},
        config=CONFIG, cycles=600,
    )
    with pytest.raises(ConfigurationError, match="digest mismatch"):
        build_flows(spec)


def test_burst_fairness_experiment_runs(tmp_path):
    from repro.analysis.experiments.burst_fairness import (
        format_burst_fairness,
        run_burst_fairness,
    )

    cells = run_burst_fairness(
        warmup=300, window=1200, config=CONFIG,
        cache=ResultCache(tmp_path),
    )
    assert len(cells) == 8  # (live + replayed) x every registered policy
    by_key = {(cell.traffic, cell.policy): cell for cell in cells}
    # The replayed leg feeds every policy the same arrivals as the live
    # leg, so matching cells are a standing replay-fidelity check.
    for policy in ("pvc", "perflow", "noqos", "gsf"):
        live = by_key[("bursty", policy)]
        replayed = by_key[("replayed", policy)]
        assert live.delivered_flits == replayed.delivered_flits
        assert live.mean_latency == replayed.mean_latency
    text = format_burst_fairness(cells)
    assert "bursty" in text and "replayed" in text and "noqos" in text
    assert "gsf" in text
