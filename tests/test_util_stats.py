"""RunningStats and helpers: Welford accumulation matches batch math."""

import math

from hypothesis import given, strategies as st

from repro.util.stats import RunningStats, mean, population_std


def test_mean_empty_is_zero():
    assert mean([]) == 0.0


def test_mean_basic():
    assert mean([1.0, 2.0, 3.0]) == 2.0


def test_population_std_constant_sequence():
    assert population_std([4.0, 4.0, 4.0]) == 0.0


def test_population_std_known_value():
    assert math.isclose(population_std([2.0, 4.0]), 1.0)


def test_running_stats_empty():
    stats = RunningStats()
    assert stats.count == 0
    assert stats.mean == 0.0
    assert stats.std == 0.0


def test_running_stats_single_sample():
    stats = RunningStats()
    stats.add(5.0)
    assert stats.mean == 5.0
    assert stats.minimum == 5.0
    assert stats.maximum == 5.0
    assert stats.variance == 0.0


def test_running_stats_extend_and_dict():
    stats = RunningStats()
    stats.extend([1.0, 2.0, 3.0, 4.0])
    summary = stats.as_dict()
    assert summary["count"] == 4.0
    assert summary["mean"] == 2.5
    assert summary["min"] == 1.0
    assert summary["max"] == 4.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=2, max_size=200))
def test_running_stats_matches_batch(values):
    stats = RunningStats()
    stats.extend(values)
    assert math.isclose(stats.mean, mean(values), rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(
        stats.std, population_std(values), rel_tol=1e-6, abs_tol=1e-6
    )
    assert stats.minimum == min(values)
    assert stats.maximum == max(values)
