"""CLI wiring of the campaign verbs."""

import json

import pytest

import repro.campaign.builtin as builtin
from repro.campaign import CampaignSpec, StageSpec
from repro.cli import main


@pytest.fixture
def tiny_registered(monkeypatch):
    """Register a fast campaign under the name 'tinyci'."""
    campaign = CampaignSpec(
        name="tinyci",
        description="cli test campaign",
        stages=(
            StageSpec("area", "fig3"),
            StageSpec(
                "sat",
                "saturation",
                params={"cycles": 250, "topology_names": ["mesh_x1"]},
                depends_on=("area",),
            ),
        ),
    )
    monkeypatch.setitem(builtin.CAMPAIGNS, "tinyci", campaign)
    return campaign


def _run(args, tmp_path, *extra):
    return main(
        [
            "campaign",
            *args,
            "--campaign-dir",
            str(tmp_path / "state"),
            "--baseline",
            str(tmp_path / "baseline.json"),
            "--no-cache",
            *extra,
        ]
    )


def test_campaign_list_shows_builtins(capsys):
    assert main(["campaign", "list"]) == 0
    out = capsys.readouterr().out
    assert "paper:" in out
    assert "smoke:" in out
    assert "burst_fairness" in out


def test_campaign_requires_leading_position(capsys):
    assert main(["fig3", "campaign"]) == 2
    assert "first target" in capsys.readouterr().err


def test_campaign_rejects_seed_and_fast_flags(capsys):
    assert main(["campaign", "run", "smoke", "--seed", "7"]) == 2
    assert "pinned in the campaign spec" in capsys.readouterr().err
    assert main(["campaign", "run", "smoke", "--fast"]) == 2


def test_campaign_unknown_action(capsys):
    assert main(["campaign", "dance"]) == 2
    assert "unknown campaign action" in capsys.readouterr().err


def test_campaign_run_requires_name(capsys):
    assert main(["campaign", "run"]) == 2
    assert "usage" in capsys.readouterr().err


def test_campaign_unknown_name(tmp_path, capsys):
    assert _run(["run", "ghost"], tmp_path) == 2
    assert "unknown campaign" in capsys.readouterr().err


def test_campaign_run_status_report_diff_cycle(
    tiny_registered, tmp_path, capsys
):
    # First run: no baseline yet -> --check would fail; plain run is 0.
    assert _run(["run", "tinyci"], tmp_path) == 0
    out = capsys.readouterr().out
    assert "sat: complete" in out
    assert "overall: fail no_baseline=2" in out

    # status shows completion.
    assert _run(["status", "tinyci"], tmp_path) == 0
    out = capsys.readouterr().out
    assert out.count("complete") == 2

    # Record the baseline, then report --check passes.
    assert _run(["report", "tinyci"], tmp_path, "--update-baseline") == 0
    capsys.readouterr()
    assert _run(["report", "tinyci"], tmp_path, "--check") == 0
    assert "Overall: PASS" in capsys.readouterr().out

    # diff agrees.
    assert _run(["diff", "tinyci"], tmp_path) == 0
    assert "every stage matches" in capsys.readouterr().out

    # A re-run now --check-passes and reuses everything.
    assert _run(["run", "tinyci"], tmp_path, "--check") == 0
    out = capsys.readouterr().out
    assert "served from manifest" in out


def test_campaign_check_fails_without_baseline(tiny_registered, tmp_path, capsys):
    assert _run(["run", "tinyci"], tmp_path, "--check") == 1
    err = capsys.readouterr().err
    assert "--check" in err


def test_campaign_resume_requires_manifest(tiny_registered, tmp_path, capsys):
    assert _run(["resume", "tinyci"], tmp_path) == 2
    assert "nothing to resume" in capsys.readouterr().err


def test_campaign_report_json(tiny_registered, tmp_path, capsys):
    assert _run(["run", "tinyci"], tmp_path) == 0
    capsys.readouterr()
    assert _run(["report", "tinyci"], tmp_path, "--json") == 0
    report = json.loads(capsys.readouterr().out)
    assert report["campaign"] == "tinyci"
    assert {stage["name"] for stage in report["stages"]} == {"area", "sat"}


def test_campaign_diff_reports_mismatches(tiny_registered, tmp_path, capsys):
    assert _run(["run", "tinyci"], tmp_path) == 0
    assert _run(["report", "tinyci"], tmp_path, "--update-baseline") == 0
    # Tamper with the baseline rows to force a fail verdict.
    baseline_path = tmp_path / "baseline.json"
    data = json.loads(baseline_path.read_text())
    rows = data["campaigns"]["tinyci"]["stages"]["sat"]["rows"]
    rows[0]["delivered_flits"] += 10_000
    baseline_path.write_text(json.dumps(data))
    capsys.readouterr()
    assert _run(["diff", "tinyci"], tmp_path) == 1
    out = capsys.readouterr().out
    assert "sat:" in out
    assert "delivered_flits" in out


def test_campaign_dir_defaults_to_env(tiny_registered, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(tmp_path / "envbase"))
    assert main(
        [
            "campaign",
            "run",
            "tinyci",
            "--baseline",
            str(tmp_path / "b.json"),
            "--no-cache",
        ]
    ) == 0
    assert (tmp_path / "envbase" / "tinyci" / "manifest.json").exists()
