"""PVC, per-flow-queued, and no-QoS policy semantics."""

import pytest

from repro.network.config import SimulationConfig
from repro.network.fabric import Station
from repro.network.packet import FlowSpec, Packet
from repro.qos.base import NoQosPolicy
from repro.qos.perflow import PerFlowQueuedPolicy
from repro.qos.pvc import PROVISIONED_INJECTORS, PvcPolicy


def _station(node=0, qos=True):
    return Station(0, node, "s", "mesh", n_vcs=2, va_wait=1, qos=qos)


def _packet(flow_id=0, size=4, created=0):
    return Packet(pid=1, flow_id=flow_id, src=0, dst=1, size=size, created_at=created)


def _bound_pvc(flows=None, config=None):
    policy = PvcPolicy()
    flows = flows or [FlowSpec(node=0, weight=1.0), FlowSpec(node=1, weight=2.0)]
    policy.bind(8, flows, config or SimulationConfig(frame_cycles=1000))
    return policy


def test_pvc_priority_scales_with_weight():
    policy = _bound_pvc()
    station = _station()
    heavy = _packet(flow_id=1)
    light = _packet(flow_id=0)
    policy.table.charge(0, 0, 10)
    policy.table.charge(0, 1, 10)
    # Same consumption, double weight -> half the priority value (better).
    assert policy.priority(station, heavy, 0) == pytest.approx(
        policy.priority(station, light, 0) / 2
    )


def test_pvc_on_forward_charges_local_router():
    policy = _bound_pvc()
    station = _station(node=3)
    policy.on_forward(station, _packet(flow_id=0, size=4), 0)
    assert policy.table.consumed(3, 0) == 4
    assert policy.table.consumed(0, 0) == 0


def test_pvc_refund_reverses_charge_and_clamps():
    policy = _bound_pvc()
    station = _station(node=2)
    packet = _packet(flow_id=0, size=4)
    policy.on_forward(station, packet, 0)
    policy.on_refund(station, packet, 0)
    assert policy.table.consumed(2, 0) == 0
    # Refund after a flush must not go negative.
    policy.on_refund(station, packet, 0)
    assert policy.table.consumed(2, 0) == 0


def test_pvc_frame_resets_counters_and_quota():
    policy = _bound_pvc()
    station = _station()
    policy.on_forward(station, _packet(flow_id=0, size=4), 0)
    policy.on_packet_created(0, 4, 0)
    policy.on_frame(1000)
    assert policy.table.consumed(0, 0) == 0
    assert policy.frame_injected(0) == 0


def test_pvc_quota_defaults_to_provisioned_population():
    config = SimulationConfig(frame_cycles=6400)
    policy = _bound_pvc(config=config)
    assert policy.quota_flits() == pytest.approx(6400 / PROVISIONED_INJECTORS)


def test_pvc_quota_share_override():
    config = SimulationConfig(frame_cycles=1000, reserved_quota_share=0.5)
    policy = _bound_pvc(config=config)
    assert policy.quota_flits() == pytest.approx(500)


def test_pvc_quota_protects_early_flits_only():
    config = SimulationConfig(frame_cycles=640)  # quota = 10 flits
    policy = _bound_pvc(config=config)
    assert policy.on_packet_created(0, 4, 0) is True   # 4 <= 10
    assert policy.on_packet_created(0, 4, 1) is True   # 8 <= 10
    assert policy.on_packet_created(0, 4, 2) is False  # 12 > 10
    assert policy.frame_injected(0) == 12


def test_pvc_rate_compliance_tracks_provisioned_rate():
    config = SimulationConfig(frame_cycles=50_000)
    policy = _bound_pvc(config=config)
    station = _station(node=0)
    packet = _packet(flow_id=0, size=1)
    # Fresh flow with slack: compliant.
    assert policy.is_rate_compliant(station, packet, now=10)
    # Consume far beyond the provisioned share early in the frame.
    policy.table.charge(0, 0, 500)
    assert not policy.is_rate_compliant(station, packet, now=100)


def test_pvc_may_preempt_requires_strict_inversion():
    policy = _bound_pvc()
    assert policy.may_preempt(1.0, 2.0)
    assert not policy.may_preempt(2.0, 1.0)
    assert not policy.may_preempt(1.0, 1.0)


def test_pvc_allows_preemption_flag():
    assert PvcPolicy.capabilities.preemption is True
    assert PvcPolicy.capabilities.overflow_vcs is False


def test_perflow_never_preempts_and_overflows():
    assert PerFlowQueuedPolicy.capabilities.preemption is False
    assert PerFlowQueuedPolicy.capabilities.overflow_vcs is True


def test_perflow_priority_matches_pvc_form():
    policy = PerFlowQueuedPolicy()
    policy.bind(8, [FlowSpec(node=0, weight=4.0)], SimulationConfig())
    station = _station(node=0)
    packet = _packet(flow_id=0, size=4)
    policy.on_forward(station, packet, 0)
    assert policy.priority(station, packet, 0) == pytest.approx(1.0)


def test_perflow_everyone_is_rate_compliant():
    policy = PerFlowQueuedPolicy()
    policy.bind(8, [FlowSpec(node=0)], SimulationConfig())
    assert policy.is_rate_compliant(_station(), _packet(), 0)


def test_noqos_priority_is_locally_random_but_deterministic():
    policy = NoQosPolicy()
    packet = _packet()
    station = _station()
    # Deterministic for a given (packet, cycle)...
    assert policy.priority(station, packet, 10) == policy.priority(
        station, packet, 10
    )
    # ...but varies across cycles (stateless random arbitration).
    draws = {policy.priority(station, packet, now) for now in range(16)}
    assert len(draws) > 1


def test_noqos_never_preempts():
    policy = NoQosPolicy()
    assert not policy.may_preempt(0.0, 100.0)
    assert not policy.on_packet_created(0, 4, 0)
