"""Topology builders: structure of each fabric (Table 1 / Section 3.2)."""

import pytest

from repro.errors import TopologyError
from repro.network.config import COLUMN_NODES
from repro.network.fabric import KIND_DPS_END, KIND_DPS_MID, KIND_MECS, KIND_MESH
from repro.network.packet import RouteRequest
from repro.topologies.dps import DpsTopology
from repro.topologies.mecs import MecsTopology
from repro.topologies.mesh import MeshTopology
from repro.topologies.registry import TOPOLOGY_NAMES, get_topology


def _route(build, src, dst, replica=0):
    request = RouteRequest(
        src_node=src,
        dst_node=dst,
        injection_station=build.injection_station[(src, "terminal")],
        replica_hint=replica,
    )
    return build.route_builder(request)


# -- registry -----------------------------------------------------------


def test_registry_covers_paper_order():
    assert TOPOLOGY_NAMES == ("mesh_x1", "mesh_x2", "mesh_x4", "mecs", "dps")


def test_registry_rejects_unknown():
    with pytest.raises(TopologyError):
        get_topology("torus")


def test_mesh_rejects_unevaluated_replication():
    with pytest.raises(TopologyError):
        MeshTopology(3)


# -- common scaffolding --------------------------------------------------


@pytest.mark.parametrize("name", TOPOLOGY_NAMES)
def test_every_node_has_all_injector_slots(name):
    build = get_topology(name).build()
    for node in range(COLUMN_NODES):
        for port in ("terminal", "east0", "east3", "west0", "west2"):
            assert (node, port) in build.injection_station


@pytest.mark.parametrize("name", TOPOLOGY_NAMES)
def test_each_injector_owns_distinct_vc(name):
    build = get_topology(name).build()
    seen = set()
    for key, station in build.injection_station.items():
        slot = (station, build.injection_vc[key])
        assert slot not in seen
        seen.add(slot)


@pytest.mark.parametrize("name", TOPOLOGY_NAMES)
def test_ejection_port_per_node(name):
    build = get_topology(name).build()
    assert set(build.ejection_ports) == set(range(COLUMN_NODES))
    for node, port_index in build.ejection_ports.items():
        assert build.ports[port_index].is_ejection
        assert build.ports[port_index].node == node


@pytest.mark.parametrize("name", TOPOLOGY_NAMES)
def test_self_route_is_direct_ejection(name):
    build = get_topology(name).build()
    stations, segments = _route(build, 3, 3)
    assert len(stations) == 1
    assert segments[-1][3] == -1
    assert segments[-1][0] == build.ejection_ports[3]


# -- mesh ----------------------------------------------------------------


def test_mesh_vc_count_is_table1():
    build = MeshTopology(1).build()
    station = build.station_by_label("mS0@1")
    assert len(station.vcs) == 6
    assert station.va_wait == 1  # 2-stage pipeline (VA, XT)


def test_mesh_route_has_one_station_per_hop():
    build = MeshTopology(1).build()
    stations, segments = _route(build, 1, 5)
    assert len(stations) == 1 + 4  # injection + 4 hops
    assert all(seg[1] == 1 for seg in segments[:-1])  # 1-cycle wires


def test_mesh_route_northbound_uses_north_ports():
    build = MeshTopology(1).build()
    _, segments = _route(build, 5, 2)
    first_port = build.ports[segments[0][0]]
    assert first_port.label == "N0@5"


def test_mesh_replicas_are_disjoint_channels():
    build = MeshTopology(4).build()
    ports = set()
    for replica in range(4):
        _, segments = _route(build, 0, 7, replica=replica)
        ports.add(segments[0][0])
    assert len(ports) == 4  # round-robin spreads over all replicas


def test_mesh_replica_hint_wraps():
    build = MeshTopology(2).build()
    a = _route(build, 0, 3, replica=0)
    b = _route(build, 0, 3, replica=2)
    assert a == b


def test_mesh_station_kinds():
    build = MeshTopology(1).build()
    assert build.station_by_label("mS0@4").kind == KIND_MESH


# -- MECS ----------------------------------------------------------------


def test_mecs_vc_count_is_table1():
    build = MecsTopology().build()
    station = build.station_by_label("Min@0<-7")
    assert len(station.vcs) == 14
    assert station.va_wait == 2  # 3-stage pipeline


def test_mecs_route_is_single_network_hop():
    build = MecsTopology().build()
    stations, segments = _route(build, 0, 7)
    assert len(stations) == 2  # injection + landing
    assert segments[0][1] == 7  # wire delay = tiles spanned
    assert segments[0][2] == 7  # tile span for hop accounting


def test_mecs_one_channel_per_direction():
    build = MecsTopology().build()
    # All southbound destinations of node 2 share one output channel.
    ports = {_route(build, 2, dst)[1][0][0] for dst in range(3, 8)}
    assert len(ports) == 1


def test_mecs_input_port_per_source():
    build = MecsTopology().build()
    # Node 0 has a dedicated input from each of the 7 other nodes.
    landings = {_route(build, src, 0)[0][1] for src in range(1, 8)}
    assert len(landings) == 7
    assert all(build.stations[s].kind == KIND_MECS for s in landings)


# -- DPS -----------------------------------------------------------------


def test_dps_vc_count_is_table1():
    build = DpsTopology().build()
    station = build.station_by_label("Dmid0@4")
    assert len(station.vcs) == 5


def test_dps_intermediate_hops_have_no_qos_and_no_va_wait():
    build = DpsTopology().build()
    station = build.station_by_label("Dmid0@4")
    assert station.va_wait == 0  # single-cycle traversal
    assert not station.qos      # no flow state queries/updates
    assert station.kind == KIND_DPS_MID


def test_dps_endpoints_have_qos():
    build = DpsTopology().build()
    station = build.station_by_label("Dend0S")
    assert station.qos
    assert station.va_wait == 1
    assert station.kind == KIND_DPS_END


def test_dps_route_rides_single_subnet():
    build = DpsTopology().build()
    stations, segments = _route(build, 7, 0)
    # injection + 6 mids + end station
    assert len(stations) == 8
    labels = [build.stations[s].label for s in stations[1:]]
    assert labels == [f"Dmid0@{n}" for n in range(6, 0, -1)] + ["Dend0S"]


def test_dps_adjacent_route_skips_mids():
    build = DpsTopology().build()
    stations, _ = _route(build, 3, 4)
    assert len(stations) == 2
    assert build.stations[stations[1]].label == "Dend4N"


def test_dps_local_injection_shares_segment_with_through_traffic():
    build = DpsTopology().build()
    # The 2:1 mux: node 5's injection into subnet 0 uses the same
    # segment port as through traffic leaving node 5 on subnet 0.
    _, inject_segments = _route(build, 5, 0)
    _, through_segments = _route(build, 7, 0)
    inject_port = inject_segments[0][0]
    through_port_at_5 = through_segments[2][0]
    assert inject_port == through_port_at_5


def test_dps_subnets_are_disjoint_between_destinations():
    build = DpsTopology().build()
    _, to_0 = _route(build, 7, 0)
    _, to_1 = _route(build, 7, 1)
    ports_0 = {seg[0] for seg in to_0[:-1]}
    ports_1 = {seg[0] for seg in to_1[:-1]}
    assert ports_0.isdisjoint(ports_1)


# -- geometry consistency -------------------------------------------------


@pytest.mark.parametrize("name", TOPOLOGY_NAMES)
def test_geometry_names_match(name):
    assert get_topology(name).geometry().name == name


def test_mesh_crossbar_port_counts():
    assert MeshTopology(1).geometry().crossbar_inputs == 5   # 5x5 (paper)
    assert MeshTopology(4).geometry().crossbar_inputs == 11  # 11x11 (paper)


def test_dps_crossbar_has_many_outputs():
    geometry = DpsTopology().geometry()
    assert geometry.crossbar_outputs > geometry.crossbar_inputs


def test_route_endpoint_validation():
    build = MeshTopology(1).build()
    with pytest.raises(TopologyError):
        _route(build, 0, 9)
