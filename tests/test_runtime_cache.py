"""ResultCache: hit/miss, invalidation, maintenance."""

from repro.network.config import SimulationConfig
from repro.runtime.cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from repro.runtime.spec import RunSpec, execute_spec

_CFG = SimulationConfig(frame_cycles=2000, seed=4)


def _spec(**overrides) -> RunSpec:
    base = dict(topology="mesh_x1", workload="uniform", rate=0.05,
                config=_CFG, cycles=400, warmup=100)
    base.update(overrides)
    return RunSpec(**base)


def test_get_on_empty_cache_misses(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get(_spec()) is None
    assert cache.misses == 1 and cache.hits == 0


def test_put_then_get_round_trips(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec()
    result = execute_spec(spec)
    path = cache.put(spec, result)
    assert path.is_file()
    assert spec.content_hash in path.name
    assert cache.get(spec) == result
    assert cache.hits == 1


def test_different_spec_still_misses(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec()
    cache.put(spec, execute_spec(spec))
    assert cache.get(_spec(rate=0.07)) is None


def test_corrupt_blob_reads_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec()
    path = cache.put(spec, execute_spec(spec))
    path.write_text("{ not json", encoding="utf-8")
    assert cache.get(spec) is None


def test_wrong_shaped_result_field_reads_as_miss(tmp_path):
    """Valid JSON whose 'result' is not an object must miss, not crash."""
    import json

    cache = ResultCache(tmp_path)
    spec = _spec()
    path = cache.put(spec, execute_spec(spec))
    blob = json.loads(path.read_text(encoding="utf-8"))
    for bad in (None, [1, 2], "text"):
        blob["result"] = bad
        path.write_text(json.dumps(blob), encoding="utf-8")
        assert cache.get(spec) is None


def test_version_bump_invalidates(tmp_path):
    spec = _spec()
    old = ResultCache(tmp_path, version="1.0.0")
    old.put(spec, execute_spec(spec))
    new = ResultCache(tmp_path, version="9.9.9")
    assert new.get(spec) is None
    # ... without destroying the old version's entries.
    assert old.get(spec) is not None


def test_default_version_is_the_package_version(tmp_path):
    import repro

    assert ResultCache(tmp_path).version == repro.__version__


def test_info_counts_entries_and_other_versions(tmp_path):
    spec = _spec()
    current = ResultCache(tmp_path, version="2.0.0")
    current.put(spec, execute_spec(spec))
    ResultCache(tmp_path, version="1.0.0").put(spec, execute_spec(spec))
    info = current.info()
    assert info.entries == 1
    assert info.total_bytes > 0
    assert info.other_versions == ("v1.0.0",)


def test_clear_scopes_to_current_version(tmp_path):
    spec = _spec()
    current = ResultCache(tmp_path, version="2.0.0")
    legacy = ResultCache(tmp_path, version="1.0.0")
    current.put(spec, execute_spec(spec))
    legacy.put(spec, execute_spec(spec))
    assert current.clear() == 1
    assert current.info().entries == 0
    assert legacy.get(spec) is not None
    assert legacy.clear(all_versions=True) == 1
    assert legacy.get(spec) is None


def test_clear_all_versions_leaves_foreign_directories_alone(tmp_path):
    """A shared cache root (e.g. ~/.cache) must survive clear()."""
    foreign = tmp_path / "someapp" / "data"
    foreign.mkdir(parents=True)
    (foreign / "settings.json").write_text("{}", encoding="utf-8")
    cache = ResultCache(tmp_path, version="1.0.0")
    spec = _spec()
    cache.put(spec, execute_spec(spec))
    assert cache.clear(all_versions=True) == 1
    assert (foreign / "settings.json").is_file()


def test_clear_sweeps_orphaned_temp_files(tmp_path):
    cache = ResultCache(tmp_path, version="1.0.0")
    spec = _spec()
    path = cache.put(spec, execute_spec(spec))
    orphan = path.parent / f"{spec.content_hash}.tmp.99999"
    orphan.write_text("partial", encoding="utf-8")
    cache.clear()
    assert not orphan.exists()
    assert not cache.version_dir.exists()


def test_default_cache_dir_honours_env(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "store"))
    assert default_cache_dir() == tmp_path / "store"
    monkeypatch.delenv(CACHE_DIR_ENV)
    assert default_cache_dir().name == "repro"
