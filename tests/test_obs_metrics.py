"""Windowed metrics: bucketing math, JSONL round trips, invariants."""

import pytest

from repro.errors import ConfigurationError
from repro.network.config import SimulationConfig
from repro.network.engine import ColumnSimulator
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    METRICS_FORMAT,
    METRICS_VERSION,
    ObsSession,
    WindowedMetrics,
    read_metrics,
    write_metrics,
)
from repro.qos.pvc import PvcPolicy
from repro.scenarios.tracefmt import file_sha256
from repro.topologies.registry import get_topology
from repro.traffic.workloads import full_column_workload


def hand_driven_metrics():
    """Window=10, 2 flows, 3 ports, buckets (4, 8); a scripted run."""
    metrics = WindowedMetrics(
        window=10, n_flows=2, n_ports=3, latency_buckets=(4, 8)
    )
    metrics.on_admit(1, 0, 0, 0, 3, 4)
    metrics.on_inject(1, 0, 0, "inj", 0)
    metrics.on_hop(3, 0, 0, 2, "MS", 4, False)
    metrics.on_deliver(5, 0, 0, 3, 4, 4)        # latency 4 -> bucket <=4
    metrics.on_admit(12, 1, 1, 1, 2, 2)
    metrics.on_inject(12, 1, 1, "inj", 0)
    metrics.on_deliver(19, 1, 1, 2, 2, 9)       # latency 9 -> overflow
    metrics.finalize(25)
    return metrics


def test_window_boundaries_and_counters():
    rows = hand_driven_metrics().rows
    assert [(r["start"], r["end"]) for r in rows] == [(0, 10), (10, 20), (20, 25)]
    assert [r["w"] for r in rows] == [0, 1, 2]
    assert rows[0]["created"] == [1, 0]
    assert rows[0]["flits"] == [4, 0]
    assert rows[0]["injected"] == 1 and rows[0]["hops"] == 1
    assert rows[0]["port_busy"] == {"2": 4}
    assert rows[1]["flits"] == [0, 2]
    assert rows[2]["injected"] == 0  # trailing idle partial window


def test_latency_buckets_are_upper_bounds():
    rows = hand_driven_metrics().rows
    assert rows[0]["lat_hist"] == [1, 0, 0]   # 4 lands in <=4
    assert rows[1]["lat_hist"] == [0, 0, 1]   # 9 overflows past 8
    assert rows[0]["lat_sum"] == 4 and rows[0]["lat_n"] == 1


def test_occupancy_is_time_weighted():
    rows = hand_driven_metrics().rows
    # One packet in flight cycles 1..5 -> 4 occupied cycles of 10.
    assert rows[0]["occupancy"] == pytest.approx(0.4)
    # Second packet in flight cycles 12..19 -> 7 of 10.
    assert rows[1]["occupancy"] == pytest.approx(0.7)
    assert rows[2]["occupancy"] == 0.0


def test_idle_gaps_emit_explicit_empty_rows():
    metrics = WindowedMetrics(window=10, n_flows=1, n_ports=1)
    metrics.on_admit(35, 0, 0, 0, 0, 1)
    metrics.finalize(40)
    assert len(metrics.rows) == 4
    assert [r["created"] for r in metrics.rows] == [[0], [0], [0], [1]]


def test_finalize_is_idempotent_and_window_validated():
    metrics = hand_driven_metrics()
    before = len(metrics.rows)
    metrics.finalize(25)
    assert len(metrics.rows) == before
    with pytest.raises(ConfigurationError):
        WindowedMetrics(window=0, n_flows=1, n_ports=1)


def test_jsonl_round_trip(tmp_path):
    metrics = hand_driven_metrics()
    path = tmp_path / "m.metrics.jsonl"
    digest = write_metrics(
        path,
        window_cycles=10,
        n_flows=2,
        ports=["a", "b", "c"],
        latency_buckets=(4, 8),
        rows=metrics.rows,
        meta={"label": "scripted"},
    )
    assert digest == file_sha256(path)
    doc = read_metrics(path)
    assert doc.header["format"] == METRICS_FORMAT
    assert doc.header["version"] == METRICS_VERSION
    assert doc.window_cycles == 10
    assert doc.n_flows == 2
    assert doc.ports == ["a", "b", "c"]
    assert tuple(doc.latency_buckets) == (4, 8)
    assert doc.meta == {"label": "scripted"}
    assert list(doc.windows) == metrics.rows


@pytest.mark.parametrize(
    "corrupt",
    [
        lambda lines: ["not json"] + lines[1:],
        lambda lines: [lines[0].replace(METRICS_FORMAT, "other-format")]
        + lines[1:],
        lambda lines: [lines[0].replace('"version": 1', '"version": 99')]
        + lines[1:],
        lambda lines: [lines[0]] + lines[2:],            # window gap
        lambda lines: [lines[0]] + [lines[1].replace('"w":0', '"w":7')]
        + lines[2:],
        lambda lines: [lines[0]]
        + [lines[1].replace('"flits":[4,0]', '"flits":[4]')] + lines[2:],
        lambda lines: [lines[0]]
        + [lines[1].replace('"lat_hist":[1,0,0]', '"lat_hist":[1]')]
        + lines[2:],
        lambda lines: [lines[0]]
        + [lines[1].replace('"injected"', '"unexpected"')] + lines[2:],
    ],
)
def test_validation_rejects_corruption(tmp_path, corrupt):
    path = tmp_path / "m.metrics.jsonl"
    write_metrics(
        path, window_cycles=10, n_flows=2, ports=["a", "b", "c"],
        latency_buckets=(4, 8), rows=hand_driven_metrics().rows,
    )
    lines = path.read_text().splitlines()
    mutated = corrupt(lines)
    assert mutated != lines, "corruption must change the file"
    path.write_text("\n".join(mutated) + "\n")
    with pytest.raises(ConfigurationError):
        read_metrics(path)


def test_window_totals_match_engine_stats():
    # Cross-check against the simulator's own counters: summed across
    # windows, the metrics must reproduce the run totals exactly.
    config = SimulationConfig(frame_cycles=1500, seed=9)
    build = get_topology("mecs").build(config)
    simulator = ColumnSimulator(
        build, full_column_workload(0.2), PvcPolicy(), config
    )
    session = ObsSession(window=300)
    session.attach(simulator)
    stats = simulator.run(2500)
    session.finalize(simulator.cycle)
    rows = session.metrics.rows
    assert sum(sum(r["flits"]) for r in rows) == stats.delivered_flits
    assert sum(r["lat_n"] for r in rows) == sum(
        sum(r["packets"]) for r in rows
    )
    assert rows[-1]["end"] == simulator.cycle
    assert session.metrics.buckets == DEFAULT_LATENCY_BUCKETS
