"""Injection processes: contracts, determinism, engine equivalence."""

import pytest

from repro.errors import ConfigurationError, TrafficError
from repro.network.config import COLUMN_NODES, SimulationConfig
from repro.network.engine import ColumnSimulator
from repro.network.golden import GoldenColumnSimulator
from repro.qos.pvc import PvcPolicy
from repro.scenarios import (
    BernoulliProcess,
    OnOffProcess,
    ParetoBurstProcess,
    Phase,
    PhasedProcess,
    bursty_workload,
    closed_loop_workload,
    pareto_workload,
    phased_workload,
)
from repro.topologies.registry import get_topology
from repro.util.rng import DeterministicRng

from helpers import build_simulator


def schedule_of(process, n, seed=11):
    process.reset()
    rng = DeterministicRng(seed)
    emissions = []
    cycle = 0
    while len(emissions) < n:
        emission = process.next_emission(cycle, rng)
        if emission is None:
            break
        emissions.append(emission)
        cycle = emission + 1
    return emissions


class TestProcessContracts:
    def test_same_seed_same_schedule(self):
        for make in (
            lambda: BernoulliProcess(0.2),
            lambda: OnOffProcess(0.5, 20, 60),
            lambda: ParetoBurstProcess(0.5),
            lambda: PhasedProcess((Phase(100, 0.1), Phase(100, 0.4))),
        ):
            assert schedule_of(make(), 50) == schedule_of(make(), 50)

    def test_schedules_strictly_increase(self):
        for make in (
            lambda: OnOffProcess(0.9, 10, 30),
            lambda: ParetoBurstProcess(0.9),
        ):
            emissions = schedule_of(make(), 200)
            assert all(b > a for a, b in zip(emissions, emissions[1:]))
            assert emissions[0] >= 0

    def test_reset_restores_initial_state(self):
        process = OnOffProcess(0.5, 20, 60)
        first = schedule_of(process, 30)
        second = schedule_of(process, 30)  # schedule_of resets
        assert first == second

    def test_onoff_has_gaps_longer_than_bernoulli_tail(self):
        # With p=0.9 inside bursts, any gap >> 1/p must span an OFF
        # period whose mean is 60 cycles.
        emissions = schedule_of(OnOffProcess(0.9, 20, 60), 300)
        gaps = [b - a for a, b in zip(emissions, emissions[1:])]
        assert max(gaps) > 10
        assert min(gaps) == 1

    def test_onoff_validation(self):
        with pytest.raises(TrafficError):
            OnOffProcess(0.0, 10, 10)
        with pytest.raises(TrafficError):
            OnOffProcess(0.5, 0.5, 10)

    def test_pareto_validation(self):
        with pytest.raises(TrafficError):
            ParetoBurstProcess(0.5, alpha=1.0)
        with pytest.raises(TrafficError):
            ParetoBurstProcess(0.5, cap=1.0)

    def test_phased_emission_density_tracks_phase_rate(self):
        process = PhasedProcess((Phase(1000, 0.02), Phase(1000, 0.5)))
        emissions = schedule_of(process, 600)
        early = sum(1 for e in emissions if e < 1000)
        late = sum(1 for e in emissions if 1000 <= e < 2000)
        assert late > early * 5

    def test_phased_silent_final_phase_ends_emission(self):
        process = PhasedProcess((Phase(100, 0.5), Phase(100, 0.0)))
        emissions = schedule_of(process, 1000)
        assert emissions, "first phase should emit"
        assert all(e < 100 for e in emissions)

    def test_phased_weight_changes_skip_first_phase(self):
        process = PhasedProcess(
            (Phase(100, 0.1, weight=2.0), Phase(100, 0.1, weight=5.0))
        )
        assert process.weight_changes() == ((100, 5.0),)

    def test_phased_weight_changes_only_on_real_moves(self):
        process = PhasedProcess((
            Phase(100, 0.1, weight=2.0),
            Phase(100, 0.1, weight=2.0),   # unchanged: no event
            Phase(100, 0.1, weight=5.0),
            Phase(100, 0.1),               # None: weight stays 5.0
            Phase(100, 0.1, weight=2.0),
        ))
        assert process.weight_changes() == ((200, 5.0), (400, 2.0))

    def test_phased_workload_weights_revert_per_epoch(self):
        """An epoch without weights reverts to the base weight."""
        flows = phased_workload([
            {"cycles": 100, "rate": 0.1},
            {"cycles": 100, "rate": 0.1,
             "weights": [6.0] + [1.0] * (COLUMN_NODES - 1)},
            {"cycles": 100, "rate": 0.1},
        ])
        assert flows[0].injection.weight_changes() == ((100, 6.0), (200, 1.0))
        # Flows whose weight never actually moves schedule no events.
        assert flows[1].injection.weight_changes() == ()

    def test_parse_phases_is_fully_eager(self):
        from repro.scenarios import parse_phases

        with pytest.raises(TrafficError, match="exceeds one packet"):
            parse_phases('[{"cycles": 500, "rate": 50}]')
        with pytest.raises(TrafficError, match="positive rate"):
            parse_phases('[{"cycles": 500, "rate": 0}]')

    def test_phase_validation(self):
        with pytest.raises(TrafficError):
            Phase(0, 0.1)
        with pytest.raises(TrafficError):
            Phase(10, 1.5)
        with pytest.raises(TrafficError):
            PhasedProcess(())


@pytest.mark.parametrize("topology", ["mecs", "mesh_x1", "dps"])
def test_bursty_matches_golden(topology):
    """The activity-tracked engine is bit-equal to golden on bursty load."""
    config = SimulationConfig(frame_cycles=2000, seed=3)
    build = get_topology(topology).build

    def flows():
        return bursty_workload(0.4, on_cycles=40, off_cycles=120)

    optimized = ColumnSimulator(build(config), flows(), PvcPolicy(), config)
    optimized.run(3000, warmup=500)
    golden = GoldenColumnSimulator(build(config), flows(), PvcPolicy(), config)
    golden.run(3000, warmup=500)
    assert optimized.stats.snapshot() == golden.stats.snapshot()


def test_pareto_matches_golden():
    config = SimulationConfig(frame_cycles=2000, seed=9)
    build = get_topology("mecs").build
    optimized = ColumnSimulator(
        build(config), pareto_workload(0.4), PvcPolicy(), config
    )
    optimized.run(2500)
    golden = GoldenColumnSimulator(
        build(config), pareto_workload(0.4), PvcPolicy(), config
    )
    golden.run(2500)
    assert optimized.stats.snapshot() == golden.stats.snapshot()


class TestPhasedEngine:
    def phases(self):
        return [
            {"cycles": 1000, "rate": 0.05},
            {
                "cycles": 1000,
                "rate": 0.30,
                "pattern": "tornado",
                "weights": [8.0] + [1.0] * (COLUMN_NODES - 1),
            },
        ]

    def test_phased_workload_runs_and_reprograms_weights(self):
        flows = phased_workload(self.phases())
        assert all(spec.weight == 1.0 for spec in flows)
        sim = build_simulator("mecs", flows)
        sim.run(2500)
        assert sim.stats.delivered_packets > 0
        # The epoch boundary re-programmed node 0's weight in the bound
        # policy; the spec list stays untouched (reusable).
        assert sim.policy._weights[0] == 8.0
        assert sim.flows[0].weight == 1.0
        assert sim.policy._weights[1] == 1.0

    def test_rate_change_visible_in_delivery_counts(self):
        flows = phased_workload(
            [{"cycles": 1500, "rate": 0.02}, {"cycles": 1500, "rate": 0.40}]
        )
        sim = build_simulator("mecs", flows)
        first = sim.run(1500).created_packets
        total = sim.run(1500).created_packets
        assert total - first > first * 3

    def test_golden_rejects_weight_schedules(self):
        config = SimulationConfig(frame_cycles=2000, seed=3)
        flows = phased_workload(self.phases())
        with pytest.raises(ConfigurationError):
            GoldenColumnSimulator(
                get_topology("mecs").build(config), flows, PvcPolicy(), config
            )

    def test_run_never_mutates_the_workload_specs(self):
        """A workload list is reusable across simulators (same stats)."""
        flows = phased_workload(self.phases())
        first = build_simulator("mecs", flows)
        first.run(2500)
        assert all(spec.weight == 1.0 for spec in flows)
        second = build_simulator("mecs", flows)
        second.run(2500)
        assert second.stats.snapshot() == first.stats.snapshot()


class TestClosedLoop:
    def test_outstanding_bound_holds(self):
        flows = closed_loop_workload(outstanding=3, think_cycles=0)
        sim = build_simulator("mecs", flows)
        sim.run(4000)
        # A client issues 3 initial requests and exactly one more per
        # reply that arrives, so total requests created == 3 per client
        # + replies delivered back.  That identity *is* the closed loop.
        n_clients = len(flows) - 1
        reply_flow = len(flows) - 1
        replies_delivered = sim.stats.delivered_packets_per_flow[reply_flow]
        created_requests = sum(
            sim.injector_state(client)["created"] for client in range(n_clients)
        )
        assert created_requests == 3 * n_clients + replies_delivered
        assert replies_delivered > 0

    def test_replies_match_delivered_requests(self):
        flows = closed_loop_workload(outstanding=2, requests=25)
        sim = build_simulator("mecs", flows)
        end = sim.run_until_drained(200_000)
        n_clients = len(flows) - 1
        assert end > 0
        # Every request delivered exactly once, every reply too.
        assert sim.stats.created_packets == 2 * 25 * n_clients
        assert sim.stats.delivered_packets == 2 * 25 * n_clients

    def test_think_time_slows_clients(self):
        fast = build_simulator(
            "mecs", closed_loop_workload(outstanding=1, think_cycles=0)
        )
        slow = build_simulator(
            "mecs", closed_loop_workload(outstanding=1, think_cycles=200)
        )
        fast.run(4000)
        slow.run(4000)
        assert fast.stats.created_packets > slow.stats.created_packets * 2

    def test_builder_validation(self):
        with pytest.raises(TrafficError):
            closed_loop_workload(server=99)
        with pytest.raises(TrafficError):
            closed_loop_workload(clients=(0,), server=0)
        with pytest.raises(TrafficError):
            closed_loop_workload(requests=0)

    def test_missing_reply_flow_rejected_at_bind(self):
        flows = closed_loop_workload()
        del flows[-1]  # drop the reply sink
        with pytest.raises(ConfigurationError):
            build_simulator("mecs", flows)

    def test_golden_rejects_closed_loop(self):
        config = SimulationConfig(frame_cycles=2000, seed=3)
        with pytest.raises(ConfigurationError):
            GoldenColumnSimulator(
                get_topology("mecs").build(config),
                closed_loop_workload(),
                PvcPolicy(),
                config,
            )


class TestFlowSpecValidation:
    def test_emission_drivers_mutually_exclusive(self):
        from repro.network.packet import ClosedLoopSpec, FlowSpec
        from repro.traffic.patterns import hotspot

        with pytest.raises(TrafficError):
            FlowSpec(
                node=0,
                rate=0.0,
                pattern=hotspot(1),
                injection=OnOffProcess(0.5, 10, 10),
                closed_loop=ClosedLoopSpec(),
            )

    def test_closed_loop_requires_pattern_and_zero_rate(self):
        from repro.network.packet import ClosedLoopSpec, FlowSpec
        from repro.traffic.patterns import hotspot

        with pytest.raises(TrafficError):
            FlowSpec(node=0, rate=0.0, closed_loop=ClosedLoopSpec())
        with pytest.raises(TrafficError):
            FlowSpec(
                node=0, rate=0.1, pattern=hotspot(1),
                closed_loop=ClosedLoopSpec(),
            )

    def test_closed_loop_spec_validation(self):
        from repro.network.packet import ClosedLoopSpec

        with pytest.raises(TrafficError):
            ClosedLoopSpec(outstanding=0)
        with pytest.raises(TrafficError):
            ClosedLoopSpec(think_cycles=-1)
        with pytest.raises(TrafficError):
            ClosedLoopSpec(reply_flits=0)

    def test_scripted_emissions_validated(self):
        from repro.network.packet import FlowSpec

        with pytest.raises(TrafficError):
            FlowSpec(node=0, rate=0.0, emissions=((-1, 0, 1, 1),))
        with pytest.raises(TrafficError):
            FlowSpec(node=0, rate=0.1, emissions=((0, 0, 1, 1),))
