"""Runtime executor baseline: recording, floors and guard validation."""

import json

from repro.runtime.bench import (
    RUNTIME_BENCH_FILENAME,
    RuntimeBenchResult,
    format_runtime_markdown,
    record_runtime_bench,
    validate_runtime_baseline,
)


def _result(serial=1.0, pool=0.8, spawn=1.2, dispatch=1.1, equal=True):
    return RuntimeBenchResult(
        jobs=2, batches=8, specs_per_batch=2,
        serial_seconds=serial, pool_seconds=pool, spawn_seconds=spawn,
        dispatch_seconds=dispatch, results_equal=equal,
    )


def test_ratios_derive_from_the_timings():
    result = _result(serial=1.0, pool=0.5, spawn=1.5, dispatch=2.0)
    assert result.parallel_vs_serial == 2.0
    assert result.pool_vs_spawn == 3.0
    assert result.dispatch_vs_serial == 0.5
    assert result.dispatch_vs_pool == 0.25
    assert _result(pool=0.0).pool_vs_spawn == float("inf")
    assert _result(dispatch=0.0).dispatch_vs_serial == float("inf")


def test_dispatch_floor_violations_are_reported(tmp_path):
    path = tmp_path / RUNTIME_BENCH_FILENAME
    record_runtime_bench(_result(dispatch=10.0), path)  # 0.1x vs serial
    violations, data = validate_runtime_baseline(path)
    assert any("dispatch_vs_serial" in violation for violation in violations)
    assert data["_floors"]["dispatch_vs_serial"] == 0.70
    assert "disp/serial" in format_runtime_markdown(data)


def test_record_then_validate_round_trips_cleanly(tmp_path):
    path = tmp_path / RUNTIME_BENCH_FILENAME
    record_runtime_bench(_result(), path)
    violations, data = validate_runtime_baseline(path)
    assert violations == []
    assert data["runtime_pool"]["results_equal"] is True
    assert data["_floors"]["pool_vs_spawn"] == 1.0
    assert "cpu_count" in data["_meta"]
    markdown = format_runtime_markdown(data)
    assert "runtime_pool" in markdown and "|" in markdown


def test_record_merges_into_an_existing_baseline(tmp_path):
    path = tmp_path / RUNTIME_BENCH_FILENAME
    legacy = {"fig4_sweep": {"speedup": 1.4, "timings_seconds": {"serial": 2.0}}}
    path.write_text(json.dumps(legacy), encoding="utf-8")
    record_runtime_bench(_result(), path)
    data = json.loads(path.read_text())
    assert data["fig4_sweep"]["speedup"] == 1.4  # legacy entry preserved
    assert "runtime_pool" in data
    assert validate_runtime_baseline(path)[0] == []


def test_diverged_results_and_slow_pool_are_violations(tmp_path):
    path = tmp_path / RUNTIME_BENCH_FILENAME
    record_runtime_bench(
        _result(serial=1.0, pool=2.0, spawn=1.0, equal=False), path
    )
    violations, _ = validate_runtime_baseline(path)
    text = "\n".join(violations)
    assert "results_equal" in text
    assert "pool_vs_spawn" in text
    assert "parallel_vs_serial" in text


def test_single_core_recorder_gets_the_allowance_clamp(tmp_path):
    path = tmp_path / RUNTIME_BENCH_FILENAME
    baseline = {
        "_floors": {"pool_vs_spawn": 1.0, "parallel_vs_serial": 1.0,
                    "single_core_allowance": 0.85},
        "_meta": {"cpu_count": 1},
        "runtime_pool": {"pool_vs_spawn": 1.2, "parallel_vs_serial": 0.9,
                         "results_equal": True},
        "legacy_bench": {"speedup": 0.9},
    }
    path.write_text(json.dumps(baseline), encoding="utf-8")
    assert validate_runtime_baseline(path)[0] == []  # 0.9 >= 0.85 clamp

    # The same numbers on a multi-core recorder fail the 1.0 floor.
    baseline["_meta"]["cpu_count"] = 8
    path.write_text(json.dumps(baseline), encoding="utf-8")
    violations, _ = validate_runtime_baseline(path)
    assert any("parallel_vs_serial 0.9" in v for v in violations)
    assert any("legacy_bench" in v for v in violations)


def test_missing_runtime_pool_section_is_flagged(tmp_path):
    path = tmp_path / RUNTIME_BENCH_FILENAME
    path.write_text("{}", encoding="utf-8")
    violations, _ = validate_runtime_baseline(path)
    assert any("runtime_pool" in v for v in violations)


def test_committed_runtime_baseline_passes_the_guard():
    from pathlib import Path

    committed = Path(__file__).resolve().parents[1] / RUNTIME_BENCH_FILENAME
    violations, data = validate_runtime_baseline(committed)
    assert violations == []
    assert data["runtime_pool"]["results_equal"] is True
