"""Supervised pool under injected faults: retry, watchdog, degradation."""

import pytest

from repro.errors import ExecutionFailed
from repro.network.config import SimulationConfig
from repro.resilience import Fault, FaultPlan, RetryPolicy
from repro.resilience.pool import SupervisedWorkerPool
from repro.runtime.executor import ParallelExecutor, SerialExecutor
from repro.runtime.spec import RunSpec

_CFG = SimulationConfig(frame_cycles=2000, seed=4)

#: Backoff tuned for tests: retries are immediate, determinism intact.
_FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


def _specs(count=2, cycles=300):
    return [
        RunSpec(topology="mesh_x1", workload="uniform",
                rate=0.03 + 0.01 * index, config=_CFG,
                cycles=cycles, warmup=cycles // 4)
        for index in range(count)
    ]


def test_worker_kill_is_retried_to_the_serial_answer():
    specs = _specs()
    serial = SerialExecutor().map(specs)
    plan = FaultPlan(name="kill", faults=(Fault(kind="worker_kill", at=0),))
    with ParallelExecutor(jobs=2, retry=_FAST_RETRY, fault_plan=plan) as ex:
        outcome = ex.run(specs)
    assert outcome.results == serial
    assert outcome.worker_deaths == 1
    assert outcome.retries == 1
    assert [f.kind for f in outcome.failures] == ["crash"]
    assert outcome.failures[0].retried


def test_hung_worker_is_killed_by_the_watchdog_and_the_spec_retried():
    specs = _specs()
    serial = SerialExecutor().map(specs)
    plan = FaultPlan(
        name="hang", faults=(Fault(kind="worker_hang", at=0, seconds=30.0),)
    )
    with ParallelExecutor(
        jobs=2, retry=_FAST_RETRY, timeout=0.75, fault_plan=plan
    ) as ex:
        outcome = ex.run(specs)
    assert outcome.results == serial
    assert outcome.timeouts == 1
    assert [f.kind for f in outcome.failures] == ["timeout"]


def test_exhausted_retries_raise_execution_failed_with_partial_outcome():
    specs = _specs()
    plan = FaultPlan(
        name="err", faults=(Fault(kind="spec_error", at=0, attempts=5),)
    )
    observed = []
    ex = ParallelExecutor(
        jobs=2,
        retry=RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0),
        fault_plan=plan,
    )
    ex.failure_listener = observed.append
    with ex:
        with pytest.raises(ExecutionFailed) as excinfo:
            ex.run(specs)
    error = excinfo.value
    assert [f.kind for f in error.failures] == ["error"]
    assert not error.failures[0].retried
    assert "InjectedFault" in error.failures[0].detail
    # The rest of the batch completed before the failure surfaced.
    assert error.outcome is not None and error.outcome.simulated == 1
    # attempt 0 (retried) + attempt 1 (permanent), both observed live.
    assert [r.retried for r in observed] == [True, False]


def test_repeated_deaths_degrade_to_in_process_and_still_finish():
    specs = _specs()
    serial = SerialExecutor().map(specs)
    plan = FaultPlan(
        name="storm",
        faults=(Fault(kind="worker_kill", at=0, attempts=10),
                Fault(kind="worker_kill", at=1, attempts=10)),
    )
    with ParallelExecutor(
        jobs=2,
        retry=RetryPolicy(max_attempts=10, backoff_base=0.0, jitter=0.0),
        fault_plan=plan,
        max_worker_deaths=2,
    ) as ex:
        outcome = ex.run(specs)
    assert outcome.degraded
    assert outcome.worker_deaths == 2
    assert outcome.results == serial  # in-process path skips kill faults


def test_keyboard_interrupt_force_closes_the_pool():
    closed = {}

    class InterruptingPool:
        def execute(self, *args, **kwargs):
            raise KeyboardInterrupt

        def shutdown(self, *, force=False):
            closed["force"] = force

    ex = ParallelExecutor(jobs=2)
    ex._pool = InterruptingPool()
    with pytest.raises(KeyboardInterrupt):
        ex.run(_specs())
    assert closed == {"force": True}
    assert ex._pool is None  # a later run would respawn cleanly


def test_pool_workers_persist_across_batches():
    pool = SupervisedWorkerPool(2, retry=_FAST_RETRY)
    try:
        first = pool.execute(_specs(cycles=200))
        pids = {worker.process.pid for worker in pool._workers}
        assert pids and all(first.results.values())
        second = pool.execute(_specs(cycles=250))
        assert {w.process.pid for w in pool._workers} == pids
        assert len(second.results) == 2
        assert second.worker_deaths == 0 and second.retries == 0
    finally:
        pool.shutdown()
    assert pool.active_workers == 0


def test_pool_validation_and_outcome_properties():
    with pytest.raises(ValueError):
        SupervisedWorkerPool(0)
    from repro.resilience.pool import PoolOutcome
    from repro.resilience.policy import FailureRecord

    retried = FailureRecord(spec_hash="a" * 64, label="x", kind="crash",
                            attempt=0, detail="", retried=True)
    permanent = FailureRecord(spec_hash="b" * 64, label="y", kind="error",
                              attempt=1, detail="", retried=False)
    outcome = PoolOutcome(results={}, failures=[retried, permanent])
    assert outcome.permanent_failures == [permanent]
