"""Load-sweep harness mechanics."""

from repro.analysis.sweep import LatencyPoint, latency_throughput_sweep
from repro.network.config import SimulationConfig
from repro.qos.perflow import PerFlowQueuedPolicy
from repro.traffic.workloads import uniform_workload

_FAST = SimulationConfig(frame_cycles=2000, seed=4)


def test_sweep_one_point_per_rate():
    points = latency_throughput_sweep(
        "dps", uniform_workload, [0.02, 0.05, 0.08],
        cycles=1200, warmup=300, config=_FAST,
    )
    assert [point.rate for point in points] == [0.02, 0.05, 0.08]
    assert all(isinstance(point, LatencyPoint) for point in points)


def test_sweep_latency_grows_with_load():
    points = latency_throughput_sweep(
        "mesh_x1", uniform_workload, [0.02, 0.30],
        cycles=2000, warmup=500, config=_FAST,
    )
    assert points[1].mean_latency > points[0].mean_latency


def test_sweep_throughput_grows_below_saturation():
    points = latency_throughput_sweep(
        "mecs", uniform_workload, [0.02, 0.06],
        cycles=2000, warmup=500, config=_FAST,
    )
    assert points[1].delivered_flits > points[0].delivered_flits


def test_sweep_accepts_alternate_policy():
    points = latency_throughput_sweep(
        "mesh_x1", uniform_workload, [0.05],
        cycles=1200, warmup=300, config=_FAST,
        policy_factory=PerFlowQueuedPolicy,
    )
    assert points[0].preemption_events == 0


def test_sweep_accepted_ratio_bounded():
    points = latency_throughput_sweep(
        "dps", uniform_workload, [0.05],
        cycles=1500, warmup=300, config=_FAST,
    )
    assert 0.0 < points[0].accepted_ratio <= 1.0
