"""Activity tracking: drain bookkeeping, frame rollover, cycle skipping.

Targets the paths the activity-tracked rework added or rewired:
``run_until_drained``'s aggregate undrained counter (drain detection and
the deadline :class:`SimulationError`), the frame-rollover
``carried_priority`` reset inside ``_step``, and the invariants of the
cycle-skipping machinery (exact run bounds, idle-gap jumps).
"""

import pytest

from repro.errors import SimulationError
from repro.network.config import SimulationConfig
from repro.network.packet import FlowSpec
from repro.qos.pvc import PvcPolicy

from helpers import build_simulator


def _flow(node=0, dst=7, rate=0.3, limit=None, size=(1, 1.0)):
    return FlowSpec(
        node=node, rate=rate, pattern=lambda s, rng: dst,
        size_mix=(size,), packet_limit=limit,
    )


# ----------------------------------------------------------------------
# run_until_drained

def test_drain_returns_cycle_after_last_ack():
    sim = build_simulator("mesh_x1", [_flow(rate=0.2, limit=10)])
    done = sim.run_until_drained(max_cycles=20_000)
    assert 0 < done < 20_000
    assert sim.cycle == done
    assert sim.stats.delivered_packets == 10
    state = sim.injector_state(0)
    assert state["outstanding"] == 0 and state["pending"] == 0


def test_drain_deadline_raises_simulation_error_with_outstanding():
    sim = build_simulator("mesh_x1", [_flow(rate=0.9, limit=500)])
    with pytest.raises(SimulationError, match="did not drain within 60"):
        sim.run_until_drained(max_cycles=60)


def test_drain_counts_every_finite_injector():
    flows = [_flow(node=n, dst=(n + 3) % 8, rate=0.1, limit=5) for n in range(8)]
    sim = build_simulator("mecs", flows)
    sim.run_until_drained(max_cycles=30_000)
    assert sim.stats.delivered_packets == 40
    assert all(
        sim.injector_state(f)["outstanding"] == 0 for f in range(len(flows))
    )


def test_drain_with_infinite_flow_never_completes():
    # A rate>0, unlimited flow is never idle: the budget must expire.
    sim = build_simulator("mesh_x1", [_flow(rate=0.05, limit=None)])
    with pytest.raises(SimulationError):
        sim.run_until_drained(max_cycles=500)


def test_drain_detects_work_created_after_an_idle_start():
    # Replays the manual-injection pattern used by timing tests: an
    # injector that starts idle (limit=0) is handed a packet directly;
    # the undrained counter must notice the revival.
    flows = [_flow(rate=0.0, limit=0)]
    sim = build_simulator("mesh_x1", flows)
    assert sim.run_until_drained(max_cycles=100) == 0
    injector = sim._injectors[0]
    injector.spec.packet_limit = None
    sim._create_packet(injector, now=sim.cycle)
    injector.spec.packet_limit = 0
    done = sim.run_until_drained(max_cycles=5000)
    assert done > 0
    assert sim.stats.delivered_packets == 1


# ----------------------------------------------------------------------
# frame rollover

def test_frame_flush_resets_carried_priority_in_flight():
    config = SimulationConfig(frame_cycles=64, seed=3)
    sim = build_simulator("dps", [_flow(rate=0.8, size=(4, 1.0))], config=config)
    sim.run(63)
    stamped = [
        vc.packet
        for station in sim.fabric.stations
        for vc in station.vcs
        if vc.packet is not None and vc.packet.carried_priority != 0.0
    ]
    assert stamped, "scenario must have stamped packets pre-flush"
    sim.run(2)  # executes the boundary step at cycle 64
    assert sim.cycle == 65
    for station in sim.fabric.stations:
        for vc in station.vcs:
            if vc.packet is not None:
                assert vc.packet.carried_priority == 0.0


def test_frame_flush_resets_policy_quota_counters():
    config = SimulationConfig(frame_cycles=100, seed=3)
    policy = PvcPolicy()
    sim = build_simulator(
        "mesh_x1", [_flow(rate=0.9)], policy=policy, config=config
    )
    sim.run(99)
    before_flush = policy.frame_injected(0)
    assert before_flush > 0
    sim.run(2)  # executes the boundary step at cycle 100
    # The flush zeroes the counter; cycle 100 itself may then create at
    # most one packet (<= 4 flits) before we observe it.
    assert policy.frame_injected(0) <= 4 < before_flush


def test_frame_boundaries_are_never_skipped():
    # Zero traffic and an idle fabric: cycle skipping may jump across
    # idle stretches, but every on_frame flush must still fire.
    calls = []

    class ProbePolicy(PvcPolicy):
        def on_frame(self, now):
            calls.append(now)
            super().on_frame(now)

    config = SimulationConfig(frame_cycles=250, seed=1)
    sim = build_simulator(
        "mesh_x1", [_flow(rate=0.0)], policy=ProbePolicy(), config=config
    )
    sim.run(2000)
    assert calls == [250, 500, 750, 1000, 1250, 1500, 1750]


# ----------------------------------------------------------------------
# cycle-skipping invariants

def test_run_bounds_are_exact_under_skipping():
    sim = build_simulator("mesh_x1", [_flow(rate=0.001)])
    for chunk in (1, 9, 1000, 1):
        before = sim.cycle
        sim.run(chunk)
        assert sim.cycle == before + chunk


def test_idle_simulation_is_cheap_in_steps():
    # With nothing to do, the engine should take giant strides: a
    # zero-rate flow over 100k cycles must cost only the frame flushes.
    steps = 0
    sim = build_simulator(
        "mesh_x1", [_flow(rate=0.0)],
        config=SimulationConfig(frame_cycles=10_000, seed=1),
    )
    original = sim._step

    def counting_step(limit, **kwargs):
        nonlocal steps
        steps += 1
        original(limit, **kwargs)

    sim._step = counting_step
    sim.run(100_000)
    assert sim.cycle == 100_000
    assert steps <= 11  # one per frame boundary, plus the first cycle


def test_sparse_traffic_skips_most_cycles():
    steps = 0
    sim = build_simulator(
        "mecs", [_flow(rate=0.002)],
        config=SimulationConfig(frame_cycles=50_000, seed=2),
    )
    original = sim._step

    def counting_step(limit, **kwargs):
        nonlocal steps
        steps += 1
        original(limit, **kwargs)

    sim._step = counting_step
    sim.run(50_000)
    assert sim.stats.delivered_packets > 0
    # ~40 packets x a dozen interesting cycles each << 50k cycles.
    assert steps < 5000
