"""Report generator."""

import os

import pytest

from repro.analysis.report import ReportOptions, generate_report, write_report


@pytest.fixture(scope="module")
def fast_report() -> str:
    return generate_report(ReportOptions(fast=True, seed=3))


def test_fast_report_contains_every_section(fast_report):
    for title in (
        "Figure 3",
        "Figure 4",
        "Table 2",
        "Figure 5",
        "Figure 6",
        "Figure 7",
        "saturation replay",
        "shared-column placement",
    ):
        assert title in fast_report, title


def test_report_mode_header(fast_report):
    assert "fast (scaled)" in fast_report
    assert "seed: 3" in fast_report


def test_report_tables_render(fast_report):
    assert "mesh_x1" in fast_report
    assert "dps" in fast_report
    assert "```" in fast_report


def test_write_report_creates_file(tmp_path, fast_report, monkeypatch):
    # Reuse the cached text instead of regenerating the whole harness.
    import repro.analysis.report as report_module

    monkeypatch.setattr(report_module, "generate_report", lambda options=None: fast_report)
    path = str(tmp_path / "REPORT.md")
    returned = write_report(path)
    assert returned == path
    assert os.path.exists(path)
    with open(path, encoding="utf-8") as handle:
        assert "Reproduction report" in handle.read()
