"""Trace format, capture, and bit-exact record-and-replay."""

import pytest

from repro.errors import ConfigurationError
from repro.network.config import SimulationConfig
from repro.network.engine import ColumnSimulator
from repro.network.golden import GoldenColumnSimulator
from repro.network.trace import InjectionCapture
from repro.qos.base import NoQosPolicy
from repro.qos.pvc import PvcPolicy
from repro.scenarios import (
    ScenarioTrace,
    TraceFlow,
    bursty_workload,
    capture_to_trace,
    closed_loop_workload,
    file_sha256,
    read_trace,
    replayed_workload,
    snapshot_digest,
    write_trace,
)
from repro.topologies.registry import get_topology
from repro.traffic.workloads import uniform_workload, workload1


def run_captured(flows, config, *, topology="mecs", policy=None, cycles=2500,
                 warmup=400):
    simulator = ColumnSimulator(
        get_topology(topology).build(config), flows,
        policy or PvcPolicy(), config,
    )
    capture = InjectionCapture()
    capture.attach(simulator)
    simulator.run(cycles, warmup=warmup)
    return simulator, capture


def replay_of(simulator, capture, config, *, topology="mecs", policy=None,
              cycles=2500, warmup=400):
    trace = capture_to_trace(capture, simulator.flows)
    replay = ColumnSimulator(
        get_topology(topology).build(config),
        replayed_workload(trace),
        policy or PvcPolicy(),
        config,
    )
    replay.run(cycles, warmup=warmup)
    return replay


class TestReplayBitExactness:
    @pytest.mark.parametrize(
        "flows_builder",
        [
            lambda: uniform_workload(0.1),
            lambda: workload1(),
            lambda: bursty_workload(0.4, on_cycles=40, off_cycles=120),
            lambda: closed_loop_workload(outstanding=4, think_cycles=9),
        ],
        ids=["uniform", "workload1", "bursty", "closed_loop"],
    )
    def test_replay_reproduces_snapshot(self, flows_builder):
        config = SimulationConfig(frame_cycles=2000, seed=13)
        source, capture = run_captured(flows_builder(), config)
        replay = replay_of(source, capture, config)
        assert replay.stats.snapshot() == source.stats.snapshot()

    def test_replay_reapplies_weight_schedules(self):
        """A phased run's weight re-programmings survive the round trip."""
        from repro.scenarios import phased_workload

        phases = [
            {"cycles": 800, "rate": 0.10},
            {"cycles": 800, "rate": 0.35,
             "weights": [6.0] + [1.0] * 7},
        ]
        config = SimulationConfig(frame_cycles=2000, seed=17)
        source, capture = run_captured(phased_workload(phases), config)
        trace = capture_to_trace(capture, source.flows)
        assert trace.flows[0].weight_changes == ((800, 6.0),)
        replay = replay_of(source, capture, config)
        assert replay.stats.snapshot() == source.stats.snapshot()
        assert replay.policy._weights[0] == 6.0

    def test_replay_under_noqos(self):
        """Replays work under any policy, not just the recording one."""
        config = SimulationConfig(frame_cycles=2000, seed=13)
        source, capture = run_captured(
            bursty_workload(0.4), config, policy=NoQosPolicy()
        )
        replay = replay_of(source, capture, config, policy=NoQosPolicy())
        assert replay.stats.snapshot() == source.stats.snapshot()

    def test_replay_of_replay_is_fixed_point(self):
        config = SimulationConfig(frame_cycles=2000, seed=5)
        source, capture = run_captured(bursty_workload(0.4), config)
        trace = capture_to_trace(capture, source.flows)
        replay = ColumnSimulator(
            get_topology("mecs").build(config),
            replayed_workload(trace), PvcPolicy(), config,
        )
        second_capture = InjectionCapture()
        second_capture.attach(replay)
        replay.run(2500, warmup=400)
        assert tuple(second_capture.emissions) == trace.emissions

    def test_capture_does_not_perturb_the_run(self):
        config = SimulationConfig(frame_cycles=2000, seed=21)
        plain = ColumnSimulator(
            get_topology("mecs").build(config), uniform_workload(0.1),
            PvcPolicy(), config,
        )
        plain.run(2000)
        captured, _ = run_captured(
            uniform_workload(0.1), config, cycles=2000, warmup=0
        )
        assert plain.stats.snapshot() == captured.stats.snapshot()

    def test_drained_replay(self):
        """A finite captured run drains when replayed, at the same cycle."""
        config = SimulationConfig(frame_cycles=2000, seed=8)
        flows = closed_loop_workload(outstanding=2, requests=15)
        source = ColumnSimulator(
            get_topology("mecs").build(config), flows, PvcPolicy(), config
        )
        capture = InjectionCapture()
        capture.attach(source)
        source_end = source.run_until_drained(100_000)
        trace = capture_to_trace(capture, source.flows)
        replay = ColumnSimulator(
            get_topology("mecs").build(config),
            replayed_workload(trace), PvcPolicy(), config,
        )
        replay_end = replay.run_until_drained(100_000)
        assert replay_end == source_end
        assert replay.stats.snapshot() == source.stats.snapshot()


class TestTraceFile:
    def make_trace(self):
        config = SimulationConfig(frame_cycles=2000, seed=3)
        source, capture = run_captured(
            bursty_workload(0.3), config, cycles=1500, warmup=0
        )
        return capture_to_trace(
            capture, source.flows,
            meta={"snapshot_sha256": snapshot_digest(source.stats.snapshot())},
        )

    def test_write_read_round_trip(self, tmp_path):
        trace = self.make_trace()
        path = tmp_path / "trace.jsonl"
        digest = write_trace(path, trace)
        assert digest == file_sha256(path)
        loaded = read_trace(path, expect_sha256=digest)
        assert loaded == trace

    def test_digest_mismatch_rejected(self, tmp_path):
        trace = self.make_trace()
        path = tmp_path / "trace.jsonl"
        write_trace(path, trace)
        with pytest.raises(ConfigurationError, match="digest mismatch"):
            read_trace(path, expect_sha256="0" * 64)

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"format": "repro-scenario-trace", "version": 99, "flows": '
            '[{"node": 0, "port": "terminal"}], "meta": {}}\n'
        )
        with pytest.raises(ConfigurationError, match="version"):
            read_trace(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(ConfigurationError):
            read_trace(path)

    def test_bad_emission_line_rejected(self, tmp_path):
        trace = self.make_trace()
        path = tmp_path / "trace.jsonl"
        write_trace(path, trace)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"c": 1}\n')
        with pytest.raises(ConfigurationError, match="line"):
            read_trace(path)

    def test_trace_validation(self):
        flows = (TraceFlow(node=0, port="terminal"),)
        with pytest.raises(ConfigurationError):
            ScenarioTrace(flows=(), emissions=(), meta={})
        with pytest.raises(ConfigurationError):
            ScenarioTrace(flows=flows, emissions=((0, 5, 1, 1),), meta={})
        with pytest.raises(ConfigurationError):  # cycles must not decrease
            ScenarioTrace(
                flows=flows, emissions=((9, 0, 1, 1), (3, 0, 1, 1)), meta={}
            )

    def test_capture_attach_rejects_golden(self):
        config = SimulationConfig(frame_cycles=2000, seed=3)
        golden = GoldenColumnSimulator(
            get_topology("mecs").build(config), uniform_workload(0.05),
            PvcPolicy(), config,
        )
        with pytest.raises(ConfigurationError):
            InjectionCapture().attach(golden)
