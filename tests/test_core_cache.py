"""Intra-domain shared-cache model."""

import pytest

from repro.core.cache import (
    CacheOrganisation,
    domain_cache_analysis,
    mean_pairwise_hops,
    miss_ratio,
    shared_wins,
)
from repro.core.chip import Chip
from repro.core.domain import Domain
from repro.errors import ConfigurationError


def _domain(width=2, height=2, origin=(0, 0)):
    x0, y0 = origin
    return Domain(
        "vm",
        frozenset(
            (x, y) for x in range(x0, x0 + width) for y in range(y0, y0 + height)
        ),
    )


def test_miss_ratio_saturates_at_one():
    assert miss_ratio(256, 1024) == 1.0
    assert miss_ratio(1024, 1024) == 1.0


def test_miss_ratio_sqrt_rule():
    assert miss_ratio(4096, 1024) == pytest.approx(0.5)
    assert miss_ratio(16384, 1024) == pytest.approx(0.25)


def test_miss_ratio_validation():
    assert miss_ratio(0, 100) == 1.0
    with pytest.raises(ConfigurationError):
        miss_ratio(100, 0)


def test_mean_pairwise_hops_single_node():
    assert mean_pairwise_hops(Domain("d", frozenset({(3, 3)}))) == 0.0


def test_mean_pairwise_hops_grows_with_span():
    small = mean_pairwise_hops(_domain(2, 2))
    large = mean_pairwise_hops(_domain(4, 2))
    assert large > small


def test_analysis_capacity_aggregation():
    chip = Chip()
    private, shared = domain_cache_analysis(
        chip, _domain(2, 2), working_set_kb=2048
    )
    assert shared.capacity_kb == 4 * private.capacity_kb
    assert shared.miss_ratio <= private.miss_ratio
    assert private.mean_access_hops == 0.0
    assert shared.mean_access_hops > 0.0


def test_analysis_validates_tile_budget():
    chip = Chip()
    with pytest.raises(ConfigurationError):
        domain_cache_analysis(
            chip, _domain(), working_set_kb=1024, cache_tiles_per_node=9
        )


def test_sharing_wins_for_overflowing_working_set():
    chip = Chip()
    # Working set far beyond one node's slice: sharing must win.
    private, shared = domain_cache_analysis(
        chip, _domain(3, 3), working_set_kb=4096
    )
    assert shared_wins(private, shared)


def test_sharing_loses_for_tiny_working_set():
    chip = Chip()
    # Working set far inside a single node's private slice: both
    # organisations sit near the compulsory-miss floor, so the shared
    # cache's extra hops buy nothing.
    private, shared = domain_cache_analysis(
        chip, _domain(3, 3), working_set_kb=4
    )
    assert private.miss_ratio < 1.0
    assert not shared_wins(private, shared)


def test_miss_floor_applies():
    from repro.core.cache import MISS_FLOOR

    assert miss_ratio(10_000_000, 1) == MISS_FLOOR
    assert miss_ratio(10_000_000, 1, floor=0.0) < MISS_FLOOR


def test_organisation_validation():
    with pytest.raises(ConfigurationError):
        CacheOrganisation("bad", capacity_kb=-1, miss_ratio=0.5, mean_access_hops=0)
    with pytest.raises(ConfigurationError):
        CacheOrganisation("bad", capacity_kb=1, miss_ratio=1.5, mean_access_hops=0)
