"""Experiment harness smoke tests: structure and formatting.

Heavy qualitative claims live in test_paper_claims.py; these verify the
harness mechanics at miniature scale.
"""


from repro.analysis.experiments import (
    format_fig3,
    format_fig4,
    format_fig5,
    format_fig6,
    format_fig7,
    format_saturation,
    format_table2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_saturation,
    run_table2,
)
from repro.network.config import SimulationConfig
from repro.topologies.registry import TOPOLOGY_NAMES

_FAST = SimulationConfig(frame_cycles=2000, seed=2)
_TWO = ("mesh_x1", "dps")


def test_fig3_covers_all_topologies():
    results = run_fig3()
    assert set(results) == set(TOPOLOGY_NAMES)
    text = format_fig3(results)
    assert "Figure 3" in text
    for name in TOPOLOGY_NAMES:
        assert name in text


def test_fig4_structure_and_formatting():
    result = run_fig4(
        rates=(0.02, 0.05), cycles=1200, warmup=300,
        topology_names=_TWO, config=_FAST,
    )
    assert set(result.uniform) == set(_TWO)
    assert len(result.uniform["dps"]) == 2
    assert all(point.mean_latency > 0 for point in result.uniform["dps"])
    text = format_fig4(result)
    assert "uniform random" in text
    assert "tornado" in text


def test_table2_structure(capsys):
    rows = run_table2(
        rate=0.05, warmup=500, window=2500, topology_names=_TWO, config=_FAST
    )
    assert [row.topology for row in rows] == list(_TWO)
    for row in rows:
        assert row.report.mean_flits > 0
    assert "Table 2" in format_table2(rows)


def test_fig5_structure():
    rows = run_fig5(cycles=4000, topology_names=_TWO, config=_FAST)
    assert len(rows) == 4  # 2 topologies x 2 workloads
    for row in rows:
        assert 0.0 <= row.wasted_hop_fraction <= 1.0
    assert "Figure 5" in format_fig5(rows)


def test_fig6_structure():
    rows = run_fig6(
        duration=1500, window=2500, warmup=500,
        topology_names=("dps",), config=_FAST,
    )
    assert len(rows) == 2
    for row in rows:
        assert row.baseline_completion > 0
        assert row.pvc_completion > 0
        assert row.min_deviation <= row.avg_deviation <= row.max_deviation
    assert "Figure 6" in format_fig6(rows)


def test_fig7_structure():
    rows = run_fig7()
    assert [row.topology for row in rows] == list(TOPOLOGY_NAMES)
    for row in rows:
        composite = row.three_hops.total_pj
        assert composite >= row.source.total_pj
    assert "Figure 7" in format_fig7(rows)


def test_saturation_structure():
    points = run_saturation(cycles=1500, topology_names=_TWO, config=_FAST)
    assert len(points) == 4  # 2 patterns x 2 topologies
    patterns = {point.pattern for point in points}
    assert patterns == {"uniform", "tornado"}
    assert "saturation" in format_saturation(points)


def test_formatters_run_without_precomputed_results():
    # Analytical figures are cheap enough to regenerate inline.
    assert format_fig3()
    assert format_fig7()
