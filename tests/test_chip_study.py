"""Chip-level shared-column placement study."""

from repro.analysis.chip_study import (
    ColumnLayoutPoint,
    format_chip_study,
    run_chip_study,
)


def test_default_layouts_covered():
    points = run_chip_study()
    assert len(points) == 6
    assert points[0].columns == (4,)


def test_middle_beats_edge_on_access_distance():
    points = {p.columns: p for p in run_chip_study(((4,), (0,)))}
    assert points[(4,)].mean_access_distance < points[(0,)].mean_access_distance
    assert points[(4,)].max_access_distance < points[(0,)].max_access_distance


def test_more_columns_shorten_access_but_cost_tiles():
    points = {p.columns: p for p in run_chip_study(((4,), (2, 5)))}
    one, two = points[(4,)], points[(2, 5)]
    assert two.mean_access_distance < one.mean_access_distance
    assert two.compute_tiles < one.compute_tiles
    assert two.compute_nodes_per_shared_router < one.compute_nodes_per_shared_router


def test_isolation_holds_for_every_layout():
    # The physical-isolation property is placement-independent.
    for point in run_chip_study():
        assert point.isolation_violations == 0


def test_format_lists_layouts():
    text = format_chip_study()
    assert "Chip study" in text
    assert "[4]" in text
    assert "[2, 5]" in text


def test_point_fields_sane():
    for point in run_chip_study():
        assert 0.0 <= point.mean_access_distance <= 7.0
        assert point.compute_tiles > 0
        assert isinstance(point, ColumnLayoutPoint)
