"""CLI wiring of the runtime flags and the cache subcommand."""

import pytest

from repro.cli import _cache, _executor, build_parser, main
from repro.network.config import SimulationConfig
from repro.runtime.cache import ResultCache
from repro.runtime.executor import ParallelExecutor, SerialExecutor
from repro.runtime.spec import RunSpec, execute_spec


def _args(*argv):
    return build_parser().parse_args(["fig3", *argv])


def test_parser_runtime_defaults():
    args = _args()
    assert args.jobs == 1
    assert args.cache_dir is None
    assert not args.no_cache


def test_jobs_flag_selects_the_executor():
    assert isinstance(_executor(_args()), SerialExecutor)
    four = _executor(_args("--jobs", "4"))
    assert isinstance(four, ParallelExecutor)
    assert four.jobs == 4
    import os

    auto = _executor(_args("--jobs", "0"))
    assert auto.jobs == (os.cpu_count() or 1)


def test_negative_jobs_is_an_error(capsys):
    assert main(["fig3", "--jobs", "-2"]) == 2
    assert "--jobs" in capsys.readouterr().err


def test_no_cache_disables_the_store(tmp_path):
    assert _cache(_args("--no-cache")) is None
    cache = _cache(_args("--cache-dir", str(tmp_path)))
    assert isinstance(cache, ResultCache)
    assert cache.root == tmp_path


def test_cache_info_subcommand(tmp_path, capsys):
    assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert str(tmp_path) in out
    assert "entries:        0" in out


def test_cache_clear_subcommand(tmp_path, capsys):
    spec = RunSpec(topology="mesh_x1", workload="uniform", rate=0.05,
                   config=SimulationConfig(frame_cycles=2000, seed=4),
                   cycles=300)
    ResultCache(tmp_path).put(spec, execute_spec(spec))
    assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
    assert "removed 1 cached result(s)" in capsys.readouterr().out
    assert ResultCache(tmp_path).info().entries == 0


def test_cache_unknown_action_fails(tmp_path, capsys):
    assert main(["cache", "shrink", "--cache-dir", str(tmp_path)]) == 2
    assert "unknown cache action" in capsys.readouterr().err


def test_cache_must_be_the_first_target(tmp_path, capsys):
    assert main(["fig3", "cache", "--cache-dir", str(tmp_path)]) == 2
    assert "must be the first target" in capsys.readouterr().err


def test_cache_rejects_trailing_targets(tmp_path, capsys):
    assert main(["cache", "info", "fig3", "--cache-dir", str(tmp_path)]) == 2
    assert "unexpected arguments" in capsys.readouterr().err


def test_cache_appears_in_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "cache" in out
    assert "bench" in out


def test_bench_engine_runs_and_records(tmp_path, capsys, monkeypatch):
    # Shrink the matrix so the smoke test stays fast.
    from repro.runtime import bench

    point = bench.EnginePoint("smoke_mesh", "mesh_x1", 0.05, 300, 50)
    monkeypatch.setattr(bench, "default_points", lambda fast=False: (point,))
    baseline = tmp_path / "BENCH_engine.json"
    assert main(["bench", "engine", "--fast", "--record", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "smoke_mesh" in out
    assert "identical" in out
    import json

    data = json.loads(baseline.read_text())
    assert data["smoke_mesh"]["stats_equal"] is True
    assert data["smoke_mesh"]["timings_seconds"]["golden"] > 0


def test_bench_engine_regime_and_topology_filters(capsys, monkeypatch):
    from repro.runtime import bench

    points = (
        bench.EnginePoint("smoke_mesh", "mesh_x1", 0.05, 300, 50,
                          regime="low_rate"),
        bench.EnginePoint("smoke_mecs", "mecs", 0.05, 300, 50,
                          regime="saturation"),
    )
    monkeypatch.setattr(bench, "default_points", lambda fast=False: points)
    argv = ["bench", "engine", "--fast", "--regimes", "saturation",
            "--topologies", "mecs,dps"]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "smoke_mecs" in out
    assert "smoke_mesh" not in out


def test_bench_engine_empty_filter_is_an_error(capsys):
    assert main(["bench", "engine", "--regimes", "nonexistent"]) == 2
    assert "no benchmark points match" in capsys.readouterr().err


def test_bench_guard_passes_clean_baseline(tmp_path, capsys):
    import json

    baseline = tmp_path / "BENCH_engine.json"
    baseline.write_text(json.dumps({
        "_meta": {"engine_version": "0.0.0"},
        "sat_ok": {
            "regime": "saturation", "topology": "mesh_x1", "speedup": 2.1,
            "stats_equal": True,
            "timings_seconds": {"optimized": 0.4, "golden": 0.84},
        },
    }))
    assert main(["bench", "guard", "--record", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "sat_ok" in out
    assert "2.10x" in out
    assert "identical" in out


def test_bench_guard_fails_on_divergence_or_regression(tmp_path, capsys):
    import json

    baseline = tmp_path / "BENCH_engine.json"
    baseline.write_text(json.dumps({
        "diverged": {
            "regime": "saturation", "topology": "mecs", "speedup": 2.0,
            "stats_equal": False,
            "timings_seconds": {"optimized": 0.5, "golden": 1.0},
        },
        "regressed": {
            "regime": "low_rate", "topology": "mesh_x1", "speedup": 0.8,
            "stats_equal": True,
            "timings_seconds": {"optimized": 1.0, "golden": 0.8},
        },
    }))
    assert main(["bench", "guard", "--record", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "Regressions detected" in out
    assert "diverged" in out
    assert "regressed" in out


def test_bench_guard_missing_baseline_is_an_error(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    assert main(["bench", "guard", "--record", str(missing)]) == 2
    assert "cannot read baseline" in capsys.readouterr().err


def test_bench_rejects_unknown_action(capsys):
    assert main(["bench", "nonsense"]) == 2
    assert "unknown bench action" in capsys.readouterr().err


def test_bench_must_be_first_target(capsys):
    assert main(["fig3", "bench"]) == 2
    assert "must be the first target" in capsys.readouterr().err


def test_profile_flag_prints_cprofile_report(capsys):
    assert main(["fig3", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "cProfile top 20" in out
    assert "cumulative" in out
    assert "Figure 3" in out  # the target's own output still appears


@pytest.mark.slow
def test_saturation_end_to_end_populates_and_reuses_cache(tmp_path, capsys):
    argv = ["saturation", "--fast", "--jobs", "2", "--cache-dir", str(tmp_path)]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "Section 5.2" in first
    assert "[runtime: 10 simulated, 0 cached]" in first
    entries = ResultCache(tmp_path).info().entries
    assert entries == 10  # 2 patterns x 5 topologies

    assert main(argv) == 0
    second = capsys.readouterr().out
    # Identical tables, no new cache entries: the rerun was free.
    assert "[runtime: 0 simulated, 10 cached]" in second
    assert first.split("[runtime")[0] == second.split("[runtime")[0]
    assert ResultCache(tmp_path).info().entries == entries
