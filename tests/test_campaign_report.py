"""Report card: row comparison, verdicts, baseline persistence, markdown."""

import json

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    StageSpec,
    compare_rows,
    load_baseline,
    run_campaign,
    update_baseline,
)
from repro.campaign.report import ReportCard, StageReport
from repro.errors import CampaignError


def _rows():
    return [
        {"topology": "mecs", "latency": 10.0, "events": 4, "ok": True},
        {"topology": "dps", "latency": 20.0, "events": 8, "ok": False},
    ]


def test_compare_rows_exact_match_passes():
    verdict, mismatches = compare_rows(_rows(), _rows(), tolerance=0.0)
    assert verdict == "pass"
    assert mismatches == []


def test_compare_rows_within_tolerance_is_drift():
    current = _rows()
    current[0]["latency"] = 10.2  # 2% off
    verdict, mismatches = compare_rows(current, _rows(), tolerance=0.05)
    assert verdict == "drift"
    assert len(mismatches) == 1
    assert "within" in mismatches[0]


def test_compare_rows_beyond_tolerance_fails():
    current = _rows()
    current[1]["latency"] = 40.0
    verdict, mismatches = compare_rows(current, _rows(), tolerance=0.05)
    assert verdict == "fail"
    assert "beyond" in mismatches[0]


def test_compare_rows_integer_drift_is_numeric():
    current = _rows()
    current[0]["events"] = 5  # 20% off an int count
    verdict, _ = compare_rows(current, _rows(), tolerance=0.25)
    assert verdict == "drift"


def test_compare_rows_bool_change_is_structural():
    current = _rows()
    current[0]["ok"] = False
    verdict, mismatches = compare_rows(current, _rows(), tolerance=1.0)
    assert verdict == "fail"
    assert "True" in mismatches[0] or "False" in mismatches[0]


def test_compare_rows_string_change_fails():
    current = _rows()
    current[0]["topology"] = "mesh_x1"
    verdict, _ = compare_rows(current, _rows(), tolerance=1.0)
    assert verdict == "fail"


def test_compare_rows_row_count_mismatch_fails():
    verdict, mismatches = compare_rows(_rows()[:1], _rows(), tolerance=1.0)
    assert verdict == "fail"
    assert "row count" in mismatches[0]


def test_compare_rows_field_set_mismatch_fails():
    current = _rows()
    current[0] = {"different": 1}
    verdict, mismatches = compare_rows(current, _rows(), tolerance=1.0)
    assert verdict == "fail"
    assert "fields" in mismatches[0]


def test_report_card_overall_rollup():
    def stage(verdict):
        return StageReport(
            name="s",
            kind="fig3",
            verdict=verdict,
            detail="",
            rows=1,
            elapsed_seconds=0.0,
            artifact_sha256=None,
        )

    def card(*verdicts):
        return ReportCard(
            campaign="c",
            engine="1.5.0",
            seed=1,
            drift_tolerance=0.05,
            stages=tuple(stage(v) for v in verdicts),
        )

    assert card("pass", "pass").overall == "pass"
    assert card("pass", "drift").overall == "drift"
    assert card("pass", "fail").overall == "fail"
    assert card("pass", "no_baseline").overall == "fail"
    assert card("pass", "stale_baseline").overall == "fail"
    assert not card("pass", "drift").passed
    assert card("pass", "drift").counts() == {"pass": 1, "drift": 1}


def test_markdown_contains_verdict_table_and_mismatch_details():
    card = ReportCard(
        campaign="c",
        engine="1.5.0",
        seed=1,
        drift_tolerance=0.05,
        stages=(
            StageReport(
                name="bad",
                kind="fig4",
                verdict="fail",
                detail="2 mismatch(es) vs baseline",
                rows=3,
                elapsed_seconds=1.0,
                artifact_sha256="ab" * 32,
                mismatches=("row 0 latency: 1 vs 2 (rel 5.00e-01, beyond 0.05)",),
            ),
        ),
    )
    text = card.to_markdown()
    assert "Overall: FAIL" in text
    assert "| `bad` | fig4 |" in text
    assert "row 0 latency" in text


def _tiny():
    return CampaignSpec(
        name="tiny",
        description="t",
        stages=(StageSpec("area", "fig3"),),
    )


def test_stale_baseline_verdict(tmp_path):
    baseline = tmp_path / "b.json"
    campaign = _tiny()
    run_campaign(campaign, campaign_dir=tmp_path / "c", baseline_path=baseline)
    runner = CampaignRunner(
        campaign, campaign_dir=tmp_path / "c", baseline_path=baseline
    )
    entries = runner.baseline_entries()
    entries["area"]["stage_hash"] = "0" * 64
    update_baseline(baseline, "tiny", entries)
    report = runner.report()
    assert report.stages[0].verdict == "stale_baseline"
    assert report.overall == "fail"


def test_update_baseline_preserves_other_campaigns(tmp_path):
    baseline = tmp_path / "b.json"
    update_baseline(baseline, "one", {"s": {"stage_hash": "x", "rows": []}})
    update_baseline(baseline, "two", {"t": {"stage_hash": "y", "rows": []}})
    data = load_baseline(baseline)
    assert set(data["campaigns"]) == {"one", "two"}
    update_baseline(baseline, "one", {"s2": {"stage_hash": "z", "rows": []}})
    data = load_baseline(baseline)
    assert set(data["campaigns"]["one"]["stages"]) == {"s2"}
    assert set(data["campaigns"]["two"]["stages"]) == {"t"}


def test_load_baseline_missing_returns_none(tmp_path):
    assert load_baseline(tmp_path / "nope.json") is None


def test_load_baseline_bad_schema_raises(tmp_path):
    path = tmp_path / "b.json"
    path.write_text(json.dumps({"schema": 99, "campaigns": {}}))
    with pytest.raises(CampaignError, match="schema"):
        load_baseline(path)


def test_corrupted_artifact_reports_fail_not_pending(tmp_path):
    campaign = _tiny()
    run_campaign(campaign, campaign_dir=tmp_path / "c")
    (tmp_path / "c" / "artifacts" / "area.json").write_text("garbage")
    runner = CampaignRunner(campaign, campaign_dir=tmp_path / "c")
    report = runner.report()
    assert report.stages[0].verdict == "fail"
    assert "digest" in report.stages[0].detail
    assert report.overall == "fail"


def test_committed_smoke_baseline_is_current(tmp_path):
    """The repo's CAMPAIGN_baseline.json must match the smoke campaign's
    current stage hashes — a budget or engine change without a baseline
    regeneration turns CI red via stale_baseline, not silently."""
    from pathlib import Path

    import repro
    from repro.campaign import get_campaign
    from repro.campaign.report import baseline_stage_entry
    from repro.campaign.spec import stage_hash
    from repro.campaign.stages import get_adapter

    baseline_path = Path(__file__).resolve().parents[1] / "CAMPAIGN_baseline.json"
    baseline = load_baseline(baseline_path)
    assert baseline is not None, "CAMPAIGN_baseline.json missing from the repo"
    for name in ("smoke", "paper"):
        campaign = get_campaign(name)
        for stage in campaign.stages:
            entry = baseline_stage_entry(baseline, name, stage.name)
            assert entry is not None, f"{name}/{stage.name} missing from baseline"
            expected = stage_hash(
                campaign,
                stage,
                adapter_version=get_adapter(stage.kind).version,
                engine_version=repro.__version__,
            )
            assert entry["stage_hash"] == expected, (
                f"{name}/{stage.name}: baseline is stale — regenerate with "
                "'repro campaign report {name} --update-baseline'"
            )
