"""ASCII table rendering."""

from repro.util.tables import format_table


def test_headers_and_rows_present():
    text = format_table(["a", "bb"], [[1, 2.5], [3, 4.25]])
    assert "a" in text
    assert "bb" in text
    assert "2.500" in text


def test_title_and_underline():
    text = format_table(["x"], [[1]], title="My Table")
    lines = text.splitlines()
    assert lines[0] == "My Table"
    assert lines[1] == "=" * len("My Table")


def test_float_format_override():
    text = format_table(["v"], [[1.23456]], float_format=".1f")
    assert "1.2" in text
    assert "1.23" not in text


def test_column_alignment():
    text = format_table(["col", "value"], [["tiny", 1], ["much-longer-cell", 2]])
    lines = text.splitlines()
    # All data lines align the second column at the same offset.
    offsets = {line.index("1") for line in lines if line.endswith("1")}
    offsets |= {line.index("2") for line in lines if line.endswith("2")}
    assert len(offsets) == 1


def test_string_cells_pass_through():
    text = format_table(["k"], [["98.6%"]])
    assert "98.6%" in text


def test_bools_are_not_float_formatted():
    text = format_table(["flag"], [[True]])
    assert "True" in text
