"""CLI scenario commands: list / run / record / replay."""

import pytest

from repro.cli import main


def test_scenario_list(capsys):
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("bursty", "pareto_bursty", "phased", "closed_loop", "replay"):
        assert name in out


def test_scenario_unknown_action(capsys):
    assert main(["scenario", "meow"]) == 2
    assert "unknown scenario action" in capsys.readouterr().err


def test_scenario_must_lead(capsys):
    assert main(["fig3", "scenario"]) == 2
    assert "first target" in capsys.readouterr().err


def test_scenario_run_bursty(capsys):
    assert main([
        "scenario", "run", "bursty", "--rate", "0.3", "--cycles", "1200",
        "--param", "on_cycles=40", "--param", "off_cycles=120", "--no-cache",
    ]) == 0
    out = capsys.readouterr().out
    assert "mecs/bursty@0.3/run" in out
    assert "delivered" in out
    assert "[runtime:" in out


def test_scenario_run_closed_loop(capsys):
    assert main([
        "scenario", "run", "closed_loop", "--cycles", "1500",
        "--param", "outstanding=3", "--no-cache",
    ]) == 0
    assert "closed_loop" in capsys.readouterr().out


def test_scenario_run_rejects_bad_workload(capsys):
    assert main(["scenario", "run", "wiggle", "--no-cache"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_scenario_run_rejects_bad_param(capsys):
    assert main([
        "scenario", "run", "bursty", "--rate", "0.3",
        "--param", "malformed", "--no-cache",
    ]) == 2
    assert "key=value" in capsys.readouterr().err


def test_scenario_record_requires_out(capsys):
    assert main(["scenario", "record", "bursty", "--rate", "0.3"]) == 2
    assert "--out" in capsys.readouterr().err


def test_record_then_replay_round_trip(tmp_path, capsys):
    trace_path = str(tmp_path / "bursty.jsonl")
    assert main([
        "scenario", "record", "bursty", "--rate", "0.3",
        "--cycles", "1500", "--out", trace_path,
    ]) == 0
    out = capsys.readouterr().out
    assert "recorded" in out and "sha256" in out

    assert main(["scenario", "replay", trace_path]) == 0
    out = capsys.readouterr().out
    assert "round trip bit-identical" in out


def test_replay_detects_divergence(tmp_path, capsys):
    trace_path = tmp_path / "bursty.jsonl"
    assert main([
        "scenario", "record", "bursty", "--rate", "0.3",
        "--cycles", "1200", "--out", str(trace_path),
    ]) == 0
    capsys.readouterr()
    # Corrupt one emission's size: the replay must notice the snapshot
    # no longer matches the recorded digest.
    lines = trace_path.read_text().splitlines()
    assert '"s": ' not in lines[0]
    lines[1] = lines[1].replace('"s":1', '"s":3').replace('"s":4', '"s":1')
    trace_path.write_text("\n".join(lines) + "\n")
    assert main(["scenario", "replay", str(trace_path)]) == 1
    assert "DIVERGED" in capsys.readouterr().err


def test_replay_missing_file(capsys):
    assert main(["scenario", "replay", "/nonexistent/trace.jsonl"]) == 2
    assert "scenario replay" in capsys.readouterr().err


@pytest.mark.slow
def test_bench_engine_bursty_regime(capsys):
    assert main([
        "bench", "engine", "--fast", "--regimes", "bursty",
    ]) == 0
    out = capsys.readouterr().out
    assert "bursty_saturation" in out
    assert "identical" in out


@pytest.mark.slow
def test_burst_command(capsys):
    assert main(["burst", "--fast", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "Burst fairness" in out
    assert "replayed" in out
