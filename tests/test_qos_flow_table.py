"""FlowTable: charging, flushing, frame bookkeeping."""

import pytest

from repro.errors import ConfigurationError
from repro.qos.flow_table import FlowTable


def test_charge_and_consumed():
    table = FlowTable(n_nodes=2, n_flows=3)
    table.charge(0, 1, 4)
    table.charge(0, 1, 1)
    assert table.consumed(0, 1) == 5
    assert table.consumed(1, 1) == 0  # per-router state


def test_negative_charge_refunds():
    table = FlowTable(n_nodes=1, n_flows=1)
    table.charge(0, 0, 4)
    table.charge(0, 0, -4)
    assert table.consumed(0, 0) == 0


def test_flush_clears_everything_and_marks_frame():
    table = FlowTable(n_nodes=2, n_flows=2)
    table.charge(0, 0, 7)
    table.charge(1, 1, 3)
    table.flush(now=500)
    assert table.consumed(0, 0) == 0
    assert table.consumed(1, 1) == 0
    assert table.frame_start == 500
    assert table.elapsed_in_frame(650) == 150


def test_snapshot_is_a_copy():
    table = FlowTable(n_nodes=1, n_flows=2)
    snap = table.snapshot(0)
    snap[0] = 99
    assert table.consumed(0, 0) == 0


def test_rejects_bad_dimensions():
    with pytest.raises(ConfigurationError):
        FlowTable(n_nodes=0, n_flows=1)
