"""Campaign artifact fsck and failed-spec manifests (``repro doctor``)."""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    StageSpec,
    fsck_campaign,
    run_campaign,
)
from repro.cli import main
from repro.errors import CampaignError, ExecutionFailed
from repro.resilience.policy import FailureRecord
from repro.runtime.executor import SerialExecutor


def area_campaign():
    return CampaignSpec(
        name="tinydoc",
        description="doctor test campaign",
        stages=(StageSpec("area", "fig3"),),
    )


def sat_campaign():
    return CampaignSpec(
        name="tinysat",
        description="failed-spec test campaign",
        stages=(
            StageSpec(
                "sat",
                "saturation",
                params={"cycles": 250, "topology_names": ["mesh_x1"]},
            ),
        ),
    )


class FailingExecutor(SerialExecutor):
    """Raises the structured batch failure a real executor would."""

    def run(self, specs, *, cache=None, progress=None):
        records = [
            FailureRecord(
                spec_hash=spec.content_hash,
                label=spec.label(),
                kind="error",
                attempt=0,
                detail="synthetic failure",
                retried=False,
            )
            for spec in specs[:2]
        ]
        raise ExecutionFailed(
            "injected batch failure", failures=records, outcome=None
        )


def test_fsck_passes_a_healthy_campaign(tmp_path):
    run_campaign(area_campaign(), campaign_dir=tmp_path / "c")
    report = fsck_campaign(tmp_path / "c")
    assert report.healthy
    assert report.checked >= 1 and report.ok == report.checked
    assert report.to_json()["healthy"] is True


def test_fsck_quarantines_corruption_and_resume_recomputes(tmp_path):
    campaign = area_campaign()
    run_campaign(campaign, campaign_dir=tmp_path / "c")
    artifact = tmp_path / "c" / "artifacts" / "area.json"
    artifact.write_bytes(artifact.read_bytes()[:10])  # torn write
    report = fsck_campaign(tmp_path / "c")
    assert report.quarantined == ["artifacts/area.json"]
    assert not artifact.exists()
    assert (tmp_path / "c" / "quarantine" / "area.json").exists()
    # The campaign heals itself: the stage re-runs from its spec.
    resumed = run_campaign(
        campaign, campaign_dir=tmp_path / "c", require_manifest=True
    )
    assert resumed.complete
    assert fsck_campaign(tmp_path / "c").healthy


def test_fsck_reports_missing_and_unrecorded_files(tmp_path):
    run_campaign(area_campaign(), campaign_dir=tmp_path / "c")
    (tmp_path / "c" / "artifacts" / "area.json").unlink()
    (tmp_path / "c" / "artifacts" / "stray.json").write_text("{}\n")
    report = fsck_campaign(tmp_path / "c")
    assert report.missing == ["artifacts/area.json"]
    assert report.unrecorded == ["artifacts/stray.json"]
    assert not report.healthy  # missing is unhealthy; unrecorded is not


def test_fsck_without_a_manifest_raises(tmp_path):
    with pytest.raises(CampaignError):
        fsck_campaign(tmp_path / "nothing")


def test_doctor_cli_checks_campaign_dirs(tmp_path, capsys):
    run_campaign(area_campaign(), campaign_dir=tmp_path / "c")
    cache_dir = str(tmp_path / "cache")
    assert main(
        ["doctor", "--cache-dir", cache_dir,
         "--campaign-dir", str(tmp_path / "c"), "--check"]
    ) == 0
    artifact = tmp_path / "c" / "artifacts" / "area.json"
    artifact.write_bytes(b"corrupt")
    assert main(
        ["doctor", "--cache-dir", cache_dir,
         "--campaign-dir", str(tmp_path / "c"), "--check"]
    ) == 1
    assert "quarantined" in capsys.readouterr().out


def test_failed_shard_specs_land_in_the_manifest_and_status(
    tmp_path, capsys, monkeypatch
):
    import repro.campaign.builtin as builtin

    campaign = sat_campaign()
    monkeypatch.setitem(builtin.CAMPAIGNS, "tinysat", campaign)
    result = run_campaign(
        campaign, campaign_dir=tmp_path / "c", executor=FailingExecutor()
    )
    assert result.failed_stages == ["sat"]
    manifest = json.loads((tmp_path / "c" / "manifest.json").read_text())
    entry = manifest["stages"]["sat"]
    assert entry["status"] == "failed"
    failed = entry["failed_specs"]
    assert failed and all(record["kind"] == "error" for record in failed)
    assert all("synthetic failure" in record["detail"] for record in failed)

    capsys.readouterr()
    assert main(
        ["campaign", "status", "tinysat", "--campaign-dir", str(tmp_path / "c")]
    ) == 0
    out = capsys.readouterr().out
    assert "failed spec:" in out

    # A successful re-run clears the persisted failure evidence.
    resumed = run_campaign(
        campaign, campaign_dir=tmp_path / "c", require_manifest=True
    )
    assert resumed.complete
    manifest = json.loads((tmp_path / "c" / "manifest.json").read_text())
    assert "failed_specs" not in manifest["stages"]["sat"]
